package baseline

import (
	"testing"

	"repro/internal/seq"
)

// ex11DB builds Example 1.1's database: S1 = AABCDABB, S2 = ABCD.
func ex11DB() *seq.DB {
	db := seq.NewDB()
	db.AddChars("S1", "AABCDABB")
	db.AddChars("S2", "ABCD")
	return db
}

func bpat(t *testing.T, db *seq.DB, s string) []seq.EventID {
	t.Helper()
	names := make([]string, len(s))
	for i := range s {
		names[i] = string(s[i])
	}
	ids, err := db.EventSeq(names)
	if err != nil {
		t.Fatalf("pattern %q: %v", s, err)
	}
	return ids
}

// TestExample11AllSemantics reproduces every support number the paper's
// related-work section derives on Example 1.1 (the quantitative content of
// Table I).
func TestExample11AllSemantics(t *testing.T) {
	db := ex11DB()
	s1 := db.Seqs[0]
	ab := bpat(t, db, "AB")
	cd := bpat(t, db, "CD")

	// Sequential pattern mining (Agrawal & Srikant): both have support 2.
	if got := SequenceSupport(db, ab); got != 2 {
		t.Errorf("sequence support of AB = %d, want 2", got)
	}
	if got := SequenceSupport(db, cd); got != 2 {
		t.Errorf("sequence support of CD = %d, want 2", got)
	}

	// Episode mining (Mannila et al.), definition (i): w=4 gives AB
	// support 4 in S1 (windows [1,4], [2,5], [4,7], [5,8]).
	if got := FixedWindowSupport(s1, ab, 4); got != 4 {
		t.Errorf("fixed-window support of AB in S1 = %d, want 4", got)
	}
	// Definition (ii): 2 minimal windows in S1.
	if got := MinimalWindowSupport(s1, ab); got != 2 {
		t.Errorf("minimal-window support of AB in S1 = %d, want 2", got)
	}

	// Gap requirement (Zhang et al.): gap >= 0 and <= 3 gives support 4 in
	// S1 and ratio 4/22.
	if got := GapOccurrences(s1, ab, 0, 3); got != 4 {
		t.Errorf("gap occurrences of AB in S1 = %d, want 4", got)
	}
	if got := MaxGapOccurrences(8, 2, 0, 3); got != 22 {
		t.Errorf("N_l for len 8 = %d, want 22", got)
	}
	if got := GapSupportRatio(s1, ab, 0, 3); got != 4.0/22.0 {
		t.Errorf("gap support ratio = %v, want %v", got, 4.0/22.0)
	}

	// Interaction patterns (El-Ramly et al.): AB has support 9 (8
	// substrings in S1, 1 in S2).
	if got := InteractionSupport(s1, ab); got != 8 {
		t.Errorf("interaction support of AB in S1 = %d, want 8", got)
	}
	if got := InteractionSupportDB(db, ab); got != 9 {
		t.Errorf("interaction support of AB = %d, want 9", got)
	}

	// Iterative patterns (Lo et al.): AB has support 3.
	if got := IterativeSupportDB(db, ab); got != 3 {
		t.Errorf("iterative support of AB = %d, want 3", got)
	}
	if got := IterativeSupport(s1, ab); got != 2 {
		t.Errorf("iterative support of AB in S1 = %d, want 2", got)
	}
}

// TestIntroLargerExampleSequenceSupport checks the 100-sequence example of
// the introduction under sequence-count support: both AB and CD get 100.
func TestIntroLargerExampleSequenceSupport(t *testing.T) {
	db := seq.NewDB()
	for i := 0; i < 50; i++ {
		db.AddChars("", "CABABABABABD")
	}
	for i := 0; i < 50; i++ {
		db.AddChars("", "ABCD")
	}
	ab := bpat(t, db, "AB")
	cd := bpat(t, db, "CD")
	if got := SequenceSupport(db, ab); got != 100 {
		t.Errorf("sequence support of AB = %d, want 100", got)
	}
	if got := SequenceSupport(db, cd); got != 100 {
		t.Errorf("sequence support of CD = %d, want 100", got)
	}
}

func TestCountOccurrencesMotivation(t *testing.T) {
	var events string
	for c := byte('A'); c <= 'Z'; c++ {
		events += string(c) + string(c)
	}
	db := seq.NewDB()
	db.AddChars("", events)
	if got := CountOccurrences(db, bpat(t, db, "AB")); got != 4 {
		t.Errorf("sup_all(AB) = %d, want 4", got)
	}
	if got := CountOccurrences(db, bpat(t, db, "ABCDEFGHIJKLMNOPQRSTUVWXYZ")); got != 1<<26 {
		t.Errorf("sup_all(A..Z) = %d, want 2^26", got)
	}
	if got := CountOccurrences(db, nil); got != 0 {
		t.Errorf("sup_all(empty) = %d, want 0", got)
	}
}

func TestContainsSubsequence(t *testing.T) {
	db := ex11DB()
	s2 := db.Seqs[1] // ABCD
	cases := []struct {
		pattern string
		want    bool
	}{
		{"ABCD", true}, {"AD", true}, {"DA", false}, {"ABB", false}, {"A", true},
	}
	for _, c := range cases {
		if got := ContainsSubsequence(s2, bpat(t, db, c.pattern)); got != c.want {
			t.Errorf("ContainsSubsequence(ABCD, %s) = %v, want %v", c.pattern, got, c.want)
		}
	}
	if !ContainsSubsequence(s2, nil) {
		t.Error("empty pattern must be contained")
	}
}

func TestFixedWindowEdgeCases(t *testing.T) {
	db := ex11DB()
	s1 := db.Seqs[0]
	ab := bpat(t, db, "AB")
	if got := FixedWindowSupport(s1, ab, 0); got != 0 {
		t.Errorf("w=0: %d", got)
	}
	if got := FixedWindowSupport(s1, ab, 1); got != 0 {
		t.Errorf("w < pattern length: %d", got)
	}
	// Whole-sequence window: only [1,8] exists and it contains AB.
	if got := FixedWindowSupport(s1, ab, 8); got != 1 {
		t.Errorf("w=8: %d, want 1", got)
	}
}

func TestFixedWindowWholeSequence(t *testing.T) {
	db := ex11DB()
	// S2 = ABCD, w = 4: one window, contains AB.
	if got := FixedWindowSupport(db.Seqs[1], bpat(t, db, "AB"), 4); got != 1 {
		t.Errorf("single window support = %d, want 1", got)
	}
	// Window shorter than sequence never fits.
	if got := FixedWindowSupport(db.Seqs[1], bpat(t, db, "AB"), 5); got != 0 {
		t.Errorf("oversize window = %d, want 0", got)
	}
}

func TestMinimalWindows(t *testing.T) {
	db := seq.NewDB()
	db.AddChars("", "AXXBAB")
	s := db.Seqs[0]
	ab := bpat(t, db, "AB")
	// Windows containing AB minimally: [1,4] (A1..B4)? [5,6] = AB is
	// minimal; [4?]... A positions 1,5; B positions 4,6.
	// Candidate minimal windows: [1,4] and [5,6]. [1,4] contains A1,B4 and
	// no sub-window does (start 2..4 has no A before B4... window [2,4] has
	// no A). So 2 minimal windows.
	if got := MinimalWindowSupport(s, ab); got != 2 {
		t.Errorf("minimal windows = %d, want 2", got)
	}
	// Single-event pattern: every occurrence is a minimal window.
	if got := MinimalWindowSupport(s, bpat(t, db, "A")); got != 2 {
		t.Errorf("minimal windows of A = %d, want 2", got)
	}
	if got := MinimalWindowSupport(s, nil); got != 0 {
		t.Errorf("minimal windows of empty = %d, want 0", got)
	}
}

func TestGapOccurrencesBounds(t *testing.T) {
	db := ex11DB()
	s1 := db.Seqs[0] // AABCDABB
	ab := bpat(t, db, "AB")
	// With unlimited gap (maxGap = len), all 3*... A at 1,2,6; B at 3,7,8.
	// Pairs (a,b) a<b: (1,3),(1,7),(1,8),(2,3),(2,7),(2,8),(6,7),(6,8) = 8.
	if got := GapOccurrences(s1, ab, 0, len(s1)); got != 8 {
		t.Errorf("unbounded gap occurrences = %d, want 8", got)
	}
	// Gap exactly 0 (adjacent): (2,3),(6,7) = 2.
	if got := GapOccurrences(s1, ab, 0, 0); got != 2 {
		t.Errorf("adjacent occurrences = %d, want 2", got)
	}
	// Invalid ranges.
	if got := GapOccurrences(s1, ab, -1, 3); got != 0 {
		t.Errorf("negative minGap accepted: %d", got)
	}
	if got := GapOccurrences(s1, ab, 3, 1); got != 0 {
		t.Errorf("inverted range accepted: %d", got)
	}
	if got := GapOccurrences(s1, nil, 0, 3); got != 0 {
		t.Errorf("empty pattern: %d", got)
	}
	// Triple with gaps: ABB with gap in [0,3]: A..B..B combos.
	abb := bpat(t, db, "ABB")
	// A1: B3 (gap1), then from B3: B7 gap3 ok, B8 gap4 no -> (1,3,7).
	// A2: B3 gap0 -> B7 gap3 -> (2,3,7). A2,B3,B8? gap4 no.
	// A6: B7 gap0 -> B8 gap0 -> (6,7,8). A6,B8? gap1, then no B after.
	// A1,B7? gap5 no. A2,B7 gap4 no.
	// Total: (1,3,7),(2,3,7),(6,7,8) = 3.
	if got := GapOccurrences(s1, abb, 0, 3); got != 3 {
		t.Errorf("ABB gap occurrences = %d, want 3", got)
	}
}

func TestMaxGapOccurrencesDegenerate(t *testing.T) {
	if got := MaxGapOccurrences(8, 1, 0, 3); got != 8 {
		t.Errorf("m=1: %d, want 8", got)
	}
	if got := MaxGapOccurrences(0, 2, 0, 3); got != 0 {
		t.Errorf("n=0: %d, want 0", got)
	}
	if got := MaxGapOccurrences(8, 0, 0, 3); got != 0 {
		t.Errorf("m=0: %d, want 0", got)
	}
	// Unbounded gaps: C(4,2) = 6 for n=4, m=2.
	if got := MaxGapOccurrences(4, 2, 0, 4); got != 6 {
		t.Errorf("C(4,2) = %d, want 6", got)
	}
}

func TestInteractionSupportSingleEvent(t *testing.T) {
	db := ex11DB()
	if got := InteractionSupport(db.Seqs[0], bpat(t, db, "A")); got != 3 {
		t.Errorf("interaction support of A in S1 = %d, want 3", got)
	}
	if got := InteractionSupport(db.Seqs[0], nil); got != 0 {
		t.Errorf("empty pattern = %d, want 0", got)
	}
	// Three-event pattern with fixed endpoints: ACB in S1? A..C..B:
	// substrings starting at A (1,2,6) ending at B (3,7,8) containing C
	// between: (1,7): C4? no C at 4... S1 = A A B C D A B B: C at 4.
	// (1,7): interior 2..6 contains C4 yes. (1,8): yes. (2,7): yes. (2,8):
	// yes. (6,7),(6,8): interior empty/7..7 no C. (1,3),(2,3): interior no
	// C. Total 4.
	if got := InteractionSupport(db.Seqs[0], bpat(t, db, "ACB")); got != 4 {
		t.Errorf("interaction support of ACB in S1 = %d, want 4", got)
	}
}

func TestIterativeSupportQRESemantics(t *testing.T) {
	db := seq.NewDB()
	db.AddChars("", "AXBAYB") // X,Y outside pattern alphabet
	ab := bpat(t, db, "AB")
	if got := IterativeSupport(db.Seqs[0], ab); got != 2 {
		t.Errorf("AXBAYB: %d, want 2", got)
	}
	db2 := seq.NewDB()
	db2.AddChars("", "ABA") // pattern ABA: A then B then A, all in alphabet
	aba := bpat(t, db2, "ABA")
	if got := IterativeSupport(db2.Seqs[0], aba); got != 1 {
		t.Errorf("ABA in ABA: %d, want 1", got)
	}
	// Start blocked by pattern event: in AAB, the first A is blocked by
	// the second A, so only one occurrence of AB.
	db3 := seq.NewDB()
	db3.AddChars("", "AAB")
	if got := IterativeSupport(db3.Seqs[0], bpat(t, db3, "AB")); got != 1 {
		t.Errorf("AAB: %d, want 1", got)
	}
	// Single-event pattern: one occurrence per position.
	if got := IterativeSupport(db3.Seqs[0], bpat(t, db3, "A")); got != 2 {
		t.Errorf("A in AAB: %d, want 2", got)
	}
	if got := IterativeSupport(db3.Seqs[0], nil); got != 0 {
		t.Errorf("empty pattern: %d", got)
	}
}

package baseline

import (
	"fmt"
	"time"

	"repro/internal/seq"
)

// MineBIDE mines closed sequential patterns (sequence-count support) with
// the BIDE algorithm (Wang & Han, ICDE 2004), specialized to single-event
// itemsets: a pattern is closed iff it has no forward-extension event
// (an event supported by every projected suffix) and no backward-extension
// event (an event present in the i-th maximum period of every supporting
// sequence for some i). The BackScan pruning on semi-maximum periods can be
// toggled; output is identical either way.
func MineBIDE(db *seq.DB, minSup, maxLen int, useBackScan bool) (*SeqResult, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("baseline: minSup must be >= 1, got %d", minSup)
	}
	start := time.Now()
	b := &bideMiner{
		seqMiner:    seqMiner{db: db, minSup: minSup, maxLen: maxLen, res: &SeqResult{}},
		useBackScan: useBackScan,
	}
	proj := make([]projEntry, len(db.Seqs))
	for i := range db.Seqs {
		proj[i] = projEntry{seqIdx: int32(i), pos: 1}
	}
	var prefix []seq.EventID
	for _, item := range b.frequentItems(proj) {
		e := item.Events[0]
		prefix = append(prefix[:0], e)
		sub := b.project(proj, e)
		if useBackScan && b.backwardEvent(prefix, sub, true) {
			b.res.Stats.BackScans++
			continue
		}
		b.mine(prefix, sub)
	}
	b.res.Stats.Duration = time.Since(start)
	return b.res, nil
}

type bideMiner struct {
	seqMiner
	useBackScan bool
}

func (b *bideMiner) mine(prefix []seq.EventID, proj []projEntry) {
	b.res.Stats.NodesVisited++
	items := b.frequentItems(proj)
	forwardExt := false
	for _, it := range items {
		if it.Support == len(proj) {
			forwardExt = true
			break
		}
	}
	if !forwardExt && !b.backwardEvent(prefix, proj, false) {
		b.res.Patterns = append(b.res.Patterns, SeqPattern{
			Events:  append([]seq.EventID(nil), prefix...),
			Support: len(proj),
		})
	}
	if b.maxLen > 0 && len(prefix) >= b.maxLen {
		return
	}
	for _, it := range items {
		e := it.Events[0]
		sub := b.project(proj, e)
		prefix = append(prefix, e)
		if b.useBackScan && b.backwardEvent(prefix, sub, true) {
			b.res.Stats.BackScans++
		} else {
			b.mine(prefix, sub)
		}
		prefix = prefix[:len(prefix)-1]
	}
}

// backwardEvent reports whether some event appears in the i-th
// (semi-)maximum period of prefix in every supporting sequence, for some
// i in [1..m]. With semi=false these are the maximum periods used by the
// backward-extension closure check; with semi=true the semi-maximum
// periods used by BackScan pruning.
func (b *bideMiner) backwardEvent(prefix []seq.EventID, proj []projEntry, semi bool) bool {
	m := len(prefix)
	for i := 1; i <= m; i++ {
		var inter map[seq.EventID]bool // nil means "universe" (first sequence pending)
		empty := false
		for _, pe := range proj {
			s := b.db.Seqs[pe.seqIdx]
			lo, hi, ok := b.periodBounds(s, prefix, i, semi)
			if !ok {
				empty = true
				break
			}
			present := make(map[seq.EventID]bool)
			for p := lo; p <= hi; p++ {
				present[s.At(p)] = true
			}
			if inter == nil {
				inter = present
			} else {
				for e := range inter {
					if !present[e] {
						delete(inter, e)
					}
				}
			}
			if len(inter) == 0 {
				empty = true
				break
			}
		}
		if !empty && len(inter) > 0 {
			return true
		}
	}
	return false
}

// periodBounds returns the 1-based inclusive bounds of the i-th period of
// prefix in s. The i-th maximum period spans from just after the (i-1)-th
// event of the first (leftmost) instance to just before the i-th event of
// the last (rightmost) instance; the semi-maximum period ends just before
// the i-th event of the first instance instead. ok=false when the period
// is empty.
func (b *bideMiner) periodBounds(s seq.Sequence, prefix []seq.EventID, i int, semi bool) (lo, hi int, ok bool) {
	first := firstInstance(s, prefix)
	if first == nil {
		return 0, 0, false // defensive: proj entries always contain prefix
	}
	if i == 1 {
		lo = 1
	} else {
		lo = int(first[i-2]) + 1
	}
	if semi {
		hi = int(first[i-1]) - 1
	} else {
		last := lastInstance(s, prefix)
		hi = int(last[i-1]) - 1
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// firstInstance returns the leftmost match positions of pattern in s, or
// nil when s does not contain pattern.
func firstInstance(s seq.Sequence, pattern []seq.EventID) []int32 {
	out := make([]int32, 0, len(pattern))
	j := 0
	for p := 1; p <= len(s) && j < len(pattern); p++ {
		if s.At(p) == pattern[j] {
			out = append(out, int32(p))
			j++
		}
	}
	if j < len(pattern) {
		return nil
	}
	return out
}

// lastInstance returns the rightmost match positions of pattern in s, or
// nil when s does not contain pattern.
func lastInstance(s seq.Sequence, pattern []seq.EventID) []int32 {
	out := make([]int32, len(pattern))
	j := len(pattern) - 1
	for p := len(s); p >= 1 && j >= 0; p-- {
		if s.At(p) == pattern[j] {
			out[j] = int32(p)
			j--
		}
	}
	if j >= 0 {
		return nil
	}
	return out
}

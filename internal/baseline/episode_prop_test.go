package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

// bruteFixedWindows counts width-w windows containing the pattern by
// direct enumeration — the specification of FixedWindowSupport.
func bruteFixedWindows(s seq.Sequence, pattern []seq.EventID, w int) int {
	if w < 1 || len(pattern) == 0 {
		return 0
	}
	count := 0
	for a := 1; a+w-1 <= len(s); a++ {
		if windowContains(s, a, a+w-1, pattern) {
			count++
		}
	}
	return count
}

// bruteMinimalWindows enumerates every window and keeps those that contain
// the pattern while neither one-sided shrink does.
func bruteMinimalWindows(s seq.Sequence, pattern []seq.EventID) int {
	if len(pattern) == 0 {
		return 0
	}
	count := 0
	for a := 1; a <= len(s); a++ {
		for b := a; b <= len(s); b++ {
			if !windowContains(s, a, b, pattern) {
				continue
			}
			left := a+1 > b || !windowContains(s, a+1, b, pattern)
			right := a > b-1 || !windowContains(s, a, b-1, pattern)
			if left && right {
				count++
			}
		}
	}
	return count
}

func randomSequenceDB(r *rand.Rand, maxLen int) *seq.DB {
	db := seq.NewDB()
	names := []string{"A", "B", "C"}
	n := r.Intn(maxLen)
	ev := make([]string, n)
	for j := range ev {
		ev[j] = names[r.Intn(3)]
	}
	db.Add("", ev)
	return db
}

func TestPropertyFixedWindowMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomSequenceDB(r, 20)
		if db.Dict.Size() == 0 {
			return true
		}
		s := db.Seqs[0]
		pattern := make([]seq.EventID, 1+r.Intn(3))
		for i := range pattern {
			pattern[i] = seq.EventID(r.Intn(db.Dict.Size()))
		}
		w := 1 + r.Intn(8)
		return FixedWindowSupport(s, pattern, w) == bruteFixedWindows(s, pattern, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinimalWindowMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomSequenceDB(r, 18)
		if db.Dict.Size() == 0 {
			return true
		}
		s := db.Seqs[0]
		pattern := make([]seq.EventID, 1+r.Intn(3))
		for i := range pattern {
			pattern[i] = seq.EventID(r.Intn(db.Dict.Size()))
		}
		got := MinimalWindowSupport(s, pattern)
		want := bruteMinimalWindows(s, pattern)
		if got != want {
			t.Logf("seed=%d: got %d want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGapUnboundedEqualsCountOccurrences: with the gap bound at
// the sequence length, Zhang counting equals the plain all-occurrence DP.
func TestPropertyGapUnboundedEqualsCountOccurrences(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomSequenceDB(r, 15)
		if db.Dict.Size() == 0 {
			return true
		}
		pattern := make([]seq.EventID, 1+r.Intn(3))
		for i := range pattern {
			pattern[i] = seq.EventID(r.Intn(db.Dict.Size()))
		}
		n := len(db.Seqs[0])
		return GapOccurrencesDB(db, pattern, 0, n+1) == CountOccurrences(db, pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIterativeAtMostMinimalWindows: every QRE occurrence is
// contained in... actually iterative occurrences and minimal windows are
// incomparable in general; what always holds is that iterative support is
// bounded by the number of occurrences of the first event.
func TestPropertyIterativeBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomSequenceDB(r, 20)
		if db.Dict.Size() == 0 {
			return true
		}
		s := db.Seqs[0]
		pattern := make([]seq.EventID, 1+r.Intn(3))
		for i := range pattern {
			pattern[i] = seq.EventID(r.Intn(db.Dict.Size()))
		}
		firsts := 0
		for _, e := range s {
			if e == pattern[0] {
				firsts++
			}
		}
		return IterativeSupport(s, pattern) <= firsts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}

package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestMineEpisodesExample11(t *testing.T) {
	db := seq.NewDB()
	db.AddChars("", "AABCDABB") // S1 of Example 1.1
	res, err := MineEpisodes(db.Seqs[0], 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range res.Patterns {
		got[db.PatternString(p.Events)] = p.Support
	}
	// The paper: serial episode AB has support 4 in S1 with w=4.
	if got["AB"] != 4 {
		t.Errorf("win4 support of AB = %d, want 4", got["AB"])
	}
	// Singletons: A occurs in windows... A at 1,2,6: windows [1,4],[2,5]
	// contain A via 1/2; [3,6],[4,7],[5,8] via 6: all 5 windows.
	if got["A"] != 5 {
		t.Errorf("win4 support of A = %d, want 5", got["A"])
	}
	// Every mined support must be >= minSup and anti-monotone w.r.t. the
	// prefix.
	for _, p := range res.Patterns {
		if p.Support < 2 {
			t.Errorf("pattern %v below minSup", p)
		}
		if len(p.Events) > 1 {
			if prefix, ok := got[db.PatternString(p.Events[:len(p.Events)-1])]; ok && prefix < p.Support {
				t.Errorf("anti-monotonicity violated for %v", p.Events)
			}
		}
	}
}

func TestMineEpisodesValidation(t *testing.T) {
	db := seq.NewDB()
	db.AddChars("", "AB")
	if _, err := MineEpisodes(db.Seqs[0], 0, 1, 0); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := MineEpisodes(db.Seqs[0], 2, 0, 0); err == nil {
		t.Error("minSup=0 accepted")
	}
}

func TestMineEpisodesDepthBoundedByWindow(t *testing.T) {
	db := seq.NewDB()
	db.AddChars("", "ABABABAB")
	res, err := MineEpisodes(db.Seqs[0], 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if len(p.Events) > 3 {
			t.Errorf("episode %v longer than the window", p.Events)
		}
	}
}

// TestPropertyEpisodeSupportMatchesBrute: the next-table window counting
// agrees with direct window enumeration.
func TestPropertyEpisodeSupportMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomSequenceDB(r, 25)
		if db.Dict.Size() == 0 {
			return true
		}
		s := db.Seqs[0]
		w := 1 + r.Intn(8)
		res, err := MineEpisodes(s, w, 1, 3)
		if err != nil {
			return false
		}
		for _, p := range res.Patterns {
			if p.Support != bruteFixedWindows(s, p.Events, w) {
				t.Logf("seed=%d w=%d pattern=%v: %d != %d",
					seed, w, p.Events, p.Support, bruteFixedWindows(s, p.Events, w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEpisodeComplete: the miner finds exactly the patterns whose
// brute window support clears the threshold (up to maxLen).
func TestPropertyEpisodeComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomSequenceDB(r, 15)
		if db.Dict.Size() == 0 {
			return true
		}
		s := db.Seqs[0]
		w := 2 + r.Intn(4)
		minSup := 1 + r.Intn(3)
		const maxLen = 3
		res, err := MineEpisodes(s, w, minSup, maxLen)
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, p := range res.Patterns {
			got[db.PatternString(p.Events)] = p.Support
		}
		// Exhaustive enumeration.
		var alpha []seq.EventID
		for e := 0; e < db.Dict.Size(); e++ {
			alpha = append(alpha, seq.EventID(e))
		}
		want := map[string]int{}
		var pattern []seq.EventID
		var rec func()
		rec = func() {
			for _, e := range alpha {
				pattern = append(pattern, e)
				sup := bruteFixedWindows(s, pattern, w)
				if sup >= minSup {
					want[db.PatternString(pattern)] = sup
					if len(pattern) < maxLen {
						rec()
					}
				}
				pattern = pattern[:len(pattern)-1]
			}
		}
		rec()
		if len(got) != len(want) {
			t.Logf("seed=%d: got %d want %d (got=%v want=%v)", seed, len(got), len(want), got, want)
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(59))}); err != nil {
		t.Error(err)
	}
}

package baseline

import (
	"sort"
	"time"

	"repro/internal/seq"
)

// MineCloSpanStyle mines closed sequential patterns (sequence-count
// support) in the CloSpan style: first mine the full frequent set with
// PrefixSpan, then run a post-elimination phase that removes every pattern
// having a proper supersequence of equal support. Like CloSpan, candidates
// are bucketed by support so containment checks stay within buckets.
//
// This is a faithful substitute for the CloSpan baseline of the paper's
// Experiment 1 — the distinguishing cost profile (full candidate
// maintenance followed by elimination, versus BIDE's candidate-free
// checking) is preserved, while CloSpan's projected-database-size hash is
// simplified to a support hash. With maxLen > 0, closure is judged within
// the mined (length-bounded) set.
func MineCloSpanStyle(db *seq.DB, minSup, maxLen int) (*SeqResult, error) {
	start := time.Now()
	all, err := MinePrefixSpan(db, minSup, maxLen)
	if err != nil {
		return nil, err
	}
	bySupport := make(map[int][]SeqPattern)
	for _, p := range all.Patterns {
		bySupport[p.Support] = append(bySupport[p.Support], p)
	}
	res := &SeqResult{Stats: all.Stats}
	for _, bucket := range bySupport {
		// Longer patterns cannot be contained in shorter ones; sort by
		// descending length so each pattern is only checked against the
		// strictly longer ones before it.
		sort.Slice(bucket, func(a, b int) bool { return len(bucket[a].Events) > len(bucket[b].Events) })
		for i, p := range bucket {
			closed := true
			for j := 0; j < i; j++ {
				if len(bucket[j].Events) > len(p.Events) && isSubsequenceOf(p.Events, bucket[j].Events) {
					closed = false
					break
				}
			}
			if closed {
				res.Patterns = append(res.Patterns, p)
			}
		}
	}
	SortSeqPatterns(res.Patterns)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// isSubsequenceOf reports whether a is a subsequence of b.
func isSubsequenceOf(a, b []seq.EventID) bool {
	i := 0
	for j := 0; i < len(a) && j < len(b); j++ {
		if a[i] == b[j] {
			i++
		}
	}
	return i == len(a)
}

// SortSeqPatterns orders patterns lexicographically by events — the DFS
// preorder PrefixSpan and BIDE emit naturally — so result sets from
// different miners can be compared directly.
func SortSeqPatterns(ps []SeqPattern) {
	sort.SliceStable(ps, func(a, b int) bool {
		x, y := ps[a].Events, ps[b].Events
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		for i := 0; i < n; i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}

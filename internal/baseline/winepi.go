package baseline

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/seq"
)

// MineEpisodes mines all frequent serial episodes from a single sequence
// under Mannila et al.'s fixed-width-window support (Table I, [2],
// definition (i)): the support of episode P is the number of width-w
// windows of s containing P as a subsequence — the WINEPI setting
// specialized to serial episodes over single events. Window support is
// anti-monotone (every window containing P∘e contains P), so the miner is
// a DFS with Apriori pruning, like the paper's own algorithms but with
// window counting in place of instance growth.
//
// Episodes longer than w can never occur, bounding the depth at w.
func MineEpisodes(s seq.Sequence, w, minSup, maxLen int) (*SeqResult, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: window width must be >= 1, got %d", w)
	}
	if minSup < 1 {
		return nil, fmt.Errorf("baseline: minSup must be >= 1, got %d", minSup)
	}
	start := time.Now()
	if maxLen == 0 || maxLen > w {
		maxLen = w
	}
	m := &episodeMiner{s: s, w: w, minSup: minSup, maxLen: maxLen, res: &SeqResult{}}
	m.buildNext()
	var alphabet []seq.EventID
	seen := map[seq.EventID]bool{}
	for _, e := range s {
		if !seen[e] {
			seen[e] = true
			alphabet = append(alphabet, e)
		}
	}
	sort.Slice(alphabet, func(a, b int) bool { return alphabet[a] < alphabet[b] })
	m.alphabet = alphabet
	m.mine(nil)
	m.res.Stats.Duration = time.Since(start)
	return m.res, nil
}

type episodeMiner struct {
	s        seq.Sequence
	w        int
	minSup   int
	maxLen   int
	alphabet []seq.EventID
	// next[p][k] = smallest position q >= p with s[q] = alphabet[k], or
	// n+1 when none. Indexed 1..n+1 on p.
	next [][]int32
	slot map[seq.EventID]int
	res  *SeqResult
}

// buildNext fills the classic next-occurrence table in O(n·|alphabet|).
func (m *episodeMiner) buildNext() {
	n := len(m.s)
	distinct := map[seq.EventID]int{}
	for _, e := range m.s {
		if _, ok := distinct[e]; !ok {
			distinct[e] = len(distinct)
		}
	}
	m.slot = distinct
	k := len(distinct)
	m.next = make([][]int32, n+2)
	last := make([]int32, k)
	for j := range last {
		last[j] = int32(n + 1)
	}
	m.next[n+1] = append([]int32(nil), last...)
	for p := n; p >= 1; p-- {
		last[distinct[m.s.At(p)]] = int32(p)
		m.next[p] = append([]int32(nil), last...)
	}
}

// support counts width-w windows containing pattern: for each window start
// t, greedily embed the pattern from t using the next table and test
// whether the embedding finishes by t+w-1.
func (m *episodeMiner) support(pattern []seq.EventID) int {
	n := len(m.s)
	if len(pattern) > m.w {
		return 0
	}
	count := 0
	for t := 1; t+m.w-1 <= n; t++ {
		p := int32(t)
		ok := true
		for _, e := range pattern {
			k, present := m.slot[e]
			if !present {
				return 0
			}
			q := m.next[p][k]
			if int(q) > t+m.w-1 {
				ok = false
				break
			}
			p = q + 1
		}
		if ok {
			count++
		}
	}
	return count
}

func (m *episodeMiner) mine(prefix []seq.EventID) {
	m.res.Stats.NodesVisited++
	if len(prefix) >= m.maxLen {
		return
	}
	for _, e := range m.alphabet {
		candidate := append(prefix, e)
		sup := m.support(candidate)
		if sup >= m.minSup {
			m.res.Patterns = append(m.res.Patterns, SeqPattern{
				Events:  append([]seq.EventID(nil), candidate...),
				Support: sup,
			})
			m.mine(candidate)
		}
		prefix = candidate[:len(prefix)]
	}
}

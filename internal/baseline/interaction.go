package baseline

import "repro/internal/seq"

// InteractionSupport is El-Ramly et al.'s interaction-pattern support
// (Table I, [4]): the number of substrings s[a..b] such that (i) pattern is
// a subsequence of s[a..b], and (ii) the substring's first and last events
// match the pattern's first and last events (s[a] = e1, s[b] = em). In
// Example 1.1, AB has support 9: eight substrings in S1 = AABCDABB and one
// in S2 = ABCD.
func InteractionSupport(s seq.Sequence, pattern []seq.EventID) int {
	m := len(pattern)
	if m == 0 {
		return 0
	}
	count := 0
	for a := 1; a <= len(s); a++ {
		if s.At(a) != pattern[0] {
			continue
		}
		if m == 1 {
			count++ // substring [a, a] matches a single-event pattern
			continue
		}
		for b := a + 1; b <= len(s); b++ {
			if s.At(b) != pattern[m-1] {
				continue
			}
			// Endpoints are fixed; the middle e2..e{m-1} must embed in
			// s[a+1 .. b-1].
			if windowContains(s, a+1, b-1, pattern[1:m-1]) {
				count++
			}
		}
	}
	return count
}

// InteractionSupportDB sums InteractionSupport over the database.
func InteractionSupportDB(db *seq.DB, pattern []seq.EventID) int {
	total := 0
	for _, s := range db.Seqs {
		total += InteractionSupport(s, pattern)
	}
	return total
}

package integration

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// Replication crash-recovery integration test: a real reprod primary and
// a real reprod follower (-replicate-from), both fixtures uploaded and
// appended to, the follower SIGKILLed while the WAL tail stream is live,
// then restarted over the same data dir. The restart must RESUME from
// the local WAL position (no re-bootstrap — asserted on the log lines),
// catch back up, lose no acknowledged record, and mine byte-for-byte
// identically to the primary across both fixtures × minsup {2, 6, 10}.

// syncBuf is a concurrency-safe stderr accumulator: the scanner goroutine
// writes while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) writeLine(line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.WriteString(line)
	s.b.WriteByte('\n')
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startReprodLogged launches the binary like startReprod but keeps the
// entire stderr stream, so tests can assert on replication progress lines
// ("resuming", "bootstrapped") after the fact.
func startReprodLogged(t *testing.T, bin string, args ...string) (*reprodProc, *syncBuf) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	logs := &syncBuf{}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logs.writeLine(line)
			if i := strings.LastIndex(line, " listening on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len(" listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &reprodProc{cmd: cmd, base: "http://" + addr}, logs
	case <-time.After(15 * time.Second):
		t.Fatalf("reprod did not report a listening address; stderr so far:\n%s", logs.String())
		return nil, nil
	}
}

// dbSnapshot is the slice of /stats both sides are compared on.
type dbSnapshot struct {
	SnapshotGeneration uint64 `json:"snapshotGeneration"`
	Stats              struct {
		NumSequences int `json:"numSequences"`
		TotalLength  int `json:"totalLength"`
	} `json:"stats"`
}

func getStats(t *testing.T, base, name string) (dbSnapshot, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/databases/" + name + "/stats")
	if err != nil {
		return dbSnapshot{}, 0
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var s dbSnapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatalf("stats %s/%s: %v\n%s", base, name, err, data)
		}
	}
	return s, resp.StatusCode
}

// waitCaughtUp polls until the follower serves name at exactly the
// primary's current snapshot generation. Call it only while the primary
// is quiesced (no concurrent appends), so "caught up" is well-defined.
func waitCaughtUp(t *testing.T, primaryBase, followerBase, name string) dbSnapshot {
	t.Helper()
	want, code := getStats(t, primaryBase, name)
	if code != http.StatusOK {
		t.Fatalf("primary stats %s: HTTP %d", name, code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		got, code := getStats(t, followerBase, name)
		if code == http.StatusOK && got.SnapshotGeneration == want.SnapshotGeneration {
			return want
		}
		time.Sleep(20 * time.Millisecond)
	}
	got, code := getStats(t, followerBase, name)
	t.Fatalf("follower never caught up on %s: primary gen %d, follower gen %d (HTTP %d)",
		name, want.SnapshotGeneration, got.SnapshotGeneration, code)
	return dbSnapshot{}
}

// minedPatterns returns the raw patterns array plus the envelope fields
// that must agree between primary and follower. The full bodies differ
// legitimately (elapsedMs, cache flags, server-wide upload counter), so
// byte-parity is asserted on the patterns themselves.
func minedPatterns(t *testing.T, base, name string, minsup int, closed bool) (string, uint64, int) {
	t.Helper()
	code, body := httpPost(t, base+"/v1/databases/"+name+"/mine", "application/json",
		fmt.Sprintf(`{"minSupport":%d,"closed":%t}`, minsup, closed))
	if code != http.StatusOK {
		t.Fatalf("mine %s/%s minsup=%d: %d %s", base, name, minsup, code, body)
	}
	var resp struct {
		SnapshotGeneration uint64          `json:"snapshotGeneration"`
		NumPatterns        int             `json:"numPatterns"`
		Patterns           json.RawMessage `json:"patterns"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	return string(resp.Patterns), resp.SnapshotGeneration, resp.NumPatterns
}

func TestReplicationFollowerCrashResumesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the reprod binary; skipped in -short mode")
	}
	bin := buildReprod(t)
	primaryDir, followerDir := t.TempDir(), t.TempDir()
	primary := startReprod(t, bin, primaryDir, "-fsync", "always")

	// Seed the primary: both fixtures plus a few acknowledged appends.
	for _, f := range crashFixtures {
		data, err := os.ReadFile(f.path)
		if err != nil {
			t.Fatal(err)
		}
		code, body := httpPost(t, fmt.Sprintf("%s/v1/databases/%s?format=%s", primary.base, f.name, f.format), "text/plain", string(data))
		if code != http.StatusCreated {
			t.Fatalf("upload %s: %d %s", f.name, code, body)
		}
		for i := 0; i < 8; i++ {
			code, body := httpPost(t, fmt.Sprintf("%s/v1/databases/%s/append", primary.base, f.name),
				"application/x-ndjson", appendRecordLine(f.name, i)+"\n")
			if code != http.StatusOK {
				t.Fatalf("append %s #%d: %d %s", f.name, i, code, body)
			}
		}
	}

	follower, logs1 := startReprodLogged(t, bin,
		"-addr", "127.0.0.1:0", "-data-dir", followerDir, "-fsync", "always",
		"-replicate-from", primary.base)
	for _, f := range crashFixtures {
		waitCaughtUp(t, primary.base, follower.base, f.name)
	}
	if !strings.Contains(logs1.String(), "bootstrapped") {
		t.Fatalf("first follower start must bootstrap; stderr:\n%s", logs1.String())
	}

	// Keep acknowledged appends flowing on the primary so the follower's
	// tail stream is mid-transfer, then SIGKILL the follower. Appends
	// continue for a moment after the kill: those land on the primary
	// only and are exactly what the restarted follower must catch up on.
	stop := make(chan struct{})
	appenderDone := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				appenderDone <- n
				return
			default:
			}
			// Fresh labels only, no within-sequence repetition: repetitive
			// gapped mining is exponential in per-sequence repeats, and
			// upserting the same label hundreds of times would turn the
			// parity mines below into a memory bomb (see appendRecordLine's
			// caveat). Fresh 4-event sequences move supports linearly and
			// keep minsup=2 mining fast.
			f := crashFixtures[n%len(crashFixtures)]
			line := fmt.Sprintf(`{"label":"W%d","events":["A","B","C","D"]}`, n)
			if f.name == "traces" {
				line = fmt.Sprintf(`{"label":"W%d","events":["open","auth","error","close"]}`, n)
			}
			code, body := httpPost(t, fmt.Sprintf("%s/v1/databases/%s/append", primary.base, f.name),
				"application/x-ndjson", line+"\n")
			if code != http.StatusOK {
				t.Errorf("background append #%d: %d %s", n, code, body)
				appenderDone <- n
				return
			}
			n++
		}
	}()
	time.Sleep(150 * time.Millisecond) // tail traffic in flight
	follower.sigkill(t)
	time.Sleep(100 * time.Millisecond) // acked appends the dead follower never saw
	close(stop)
	acked := <-appenderDone
	if acked == 0 {
		t.Fatal("background appender made no progress; the kill did not land mid-tail")
	}
	t.Logf("follower killed mid-tail; %d acknowledged appends during the window", acked)

	// Restart over the same data dir: the local WAL position must be
	// resumed — bootstrapping again would mean throwing away durable
	// local state the primary already confirmed.
	follower2, logs2 := startReprodLogged(t, bin,
		"-addr", "127.0.0.1:0", "-data-dir", followerDir, "-fsync", "always",
		"-replicate-from", primary.base)
	for _, f := range crashFixtures {
		want := waitCaughtUp(t, primary.base, follower2.base, f.name)

		// Zero acknowledged-record loss: the follower's recovered+caught-up
		// state matches the primary's exactly.
		got, code := getStats(t, follower2.base, f.name)
		if code != http.StatusOK || got.Stats != want.Stats {
			t.Fatalf("%s: follower stats %+v (HTTP %d), primary %+v", f.name, got.Stats, code, want.Stats)
		}

		// Mining parity, byte-for-byte on the pattern arrays.
		for _, minsup := range []int{2, 6, 10} {
			for _, closed := range []bool{false, true} {
				pPat, pGen, pN := minedPatterns(t, primary.base, f.name, minsup, closed)
				fPat, fGen, fN := minedPatterns(t, follower2.base, f.name, minsup, closed)
				if pGen != fGen || pN != fN || pPat != fPat {
					t.Fatalf("%s minsup=%d closed=%t: follower mine differs (gen %d/%d, %d/%d patterns)",
						f.name, minsup, closed, fGen, pGen, fN, pN)
				}
			}
		}
	}

	restartLogs := logs2.String()
	if !strings.Contains(restartLogs, "resuming") {
		t.Fatalf("restarted follower did not resume from its local WAL position; stderr:\n%s", restartLogs)
	}
	for _, banned := range []string{"bootstrapped", "bootstrapping fresh", "re-bootstrapping"} {
		if strings.Contains(restartLogs, banned) {
			t.Fatalf("restarted follower re-bootstrapped (%q in logs) instead of resuming; stderr:\n%s", banned, restartLogs)
		}
	}
}

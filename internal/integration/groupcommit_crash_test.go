package integration

import (
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// Group-commit crash test: many concurrent append streams against the
// real reprod binary under -fsync=always (group commit on by default),
// SIGKILL lands mid-stream, and then THE durability contract is checked
// record by record: every append the server acknowledged with a 200 must
// be present after recovery — batch boundaries, the commit window, and
// the kill point must all be invisible. The recovered directory must
// also pass `gsgrow inspect` cleanly (exit 0): a crash mid-batch may
// leave at most a torn tail, never corruption the inspector flags.

// buildGsgrow compiles cmd/gsgrow once per test run.
func buildGsgrow(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsgrow")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/gsgrow")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/gsgrow: %v\n%s", err, out)
	}
	return bin
}

func TestCrashRecoverySIGKILLConcurrentAppends(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the reprod and gsgrow binaries; skipped in -short mode")
	}
	bin := buildReprod(t)
	gsgrow := buildGsgrow(t)
	dataDir := t.TempDir()
	proc := startReprod(t, bin, dataDir, "-fsync", "always")

	code, body := httpPost(t, proc.base+"/v1/databases/scratch?format=tokens", "text/plain", "K1: k0 k1 k2\n")
	if code != http.StatusCreated {
		t.Fatalf("upload scratch: %d %s", code, body)
	}

	// Concurrent acknowledged streams: each client appends one uniquely
	// labeled record per request and records the labels the server acked
	// with a 200. The SIGKILL lands while all of them are mid-flight, so
	// the tail of every stream is unacknowledged — those records may
	// legitimately vanish; the acked prefix may not.
	const clients = 8
	ackedBy := make([][]string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				label := fmt.Sprintf("GC%d-%d", c, i)
				code, _ := httpPost(t, proc.base+"/v1/databases/scratch/append",
					"application/x-ndjson", fmt.Sprintf(`{"label":%q,"events":["k%d","k%d"]}`+"\n", label, i%5, (i+1)%5))
				if code != http.StatusOK {
					return // server killed (or shedding); stream over
				}
				ackedBy[c] = append(ackedBy[c], label)
			}
		}(c)
	}
	time.Sleep(300 * time.Millisecond) // let every stream ack a batch of records
	proc.sigkill(t)
	wg.Wait()

	var acked []string
	for _, labels := range ackedBy {
		acked = append(acked, labels...)
	}
	if len(acked) == 0 {
		t.Fatal("no append was acknowledged before the kill; test proves nothing")
	}

	// The inspector must read the crashed directory cleanly: whatever the
	// kill left (a torn tail at worst) is a recoverable state, not damage.
	scratchDir := filepath.Join(dataDir, "scratch")
	if out, err := exec.Command(gsgrow, "inspect", scratchDir).CombinedOutput(); err != nil {
		t.Fatalf("gsgrow inspect after SIGKILL: %v\n%s", err, out)
	}

	// Record-by-record: recover in-process and demand every acked label.
	st, err := store.Open(scratchDir, store.Options{})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	db := st.Current().DB()
	have := make(map[string]bool, db.NumSequences())
	for i := range db.Seqs {
		have[db.Label(i)] = true
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, label := range acked {
		if !have[label] {
			t.Fatalf("acknowledged append %s lost across SIGKILL (%d acked, %d recovered)",
				label, len(acked), len(have))
		}
	}
	t.Logf("%d concurrent acked appends all recovered (%d sequences total incl. unacked tail)", len(acked), len(have))

	// And the real server recovers the same directory and serves it.
	proc2 := startReprod(t, bin, dataDir, "-fsync", "always")
	code, body = httpPost(t, proc2.base+"/v1/databases/scratch/append",
		"application/x-ndjson", `{"label":"POST-RECOVERY","events":["k1"]}`+"\n")
	if code != http.StatusOK {
		t.Fatalf("append after restart: %d %s", code, body)
	}
}

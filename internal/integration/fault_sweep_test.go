package integration

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/vfs"
)

// Systematic single-fault sweep: one fixed workload — open, append,
// checkpoint, close, reopen, append, close — is first run fault-free to
// count its filesystem operations, then re-run once per (operation
// index × fault flavor), injecting exactly one failure at that point.
// The durability contract under fsync=always:
//
//   - nothing panics, anywhere, ever;
//   - every Open either yields a working database or a typed error
//     (wrapping repro.ErrStorage — never an unwrapped internal one);
//   - after the faulty run, a clean reopen recovers EVERY append that
//     was acknowledged (extra unacknowledged tail records are
//     permitted: recovery may keep writes that completed on disk but
//     whose acknowledgement failed).

// sweepOptions pins the workload's behavior: no automatic checkpoints
// (the workload checkpoints explicitly, keeping the op trace fixed) and
// a parked prober (the sweep asserts immediate outcomes, not heals).
func sweepOptions(fsys vfs.FS) repro.OpenOptions {
	return repro.OpenOptions{
		FS:                 fsys,
		CheckpointWALBytes: -1,
		ProbeBackoff:       10 * time.Minute,
		ProbeBackoffMax:    10 * time.Minute,
	}
}

// sweepRecord builds append #i: a fresh sequence whose unique event
// name makes its survival independently checkable.
func sweepRecord(i int) []repro.Record {
	return []repro.Record{{Label: fmt.Sprintf("r%d", i), Events: []string{fmt.Sprintf("e%d", i), "x"}}}
}

// runSweepWorkload executes the workload through fsys and returns which
// append indices were acknowledged. Every error path must be typed; the
// workload tolerates errors (that is the point) but never ignores a
// malformed one.
func runSweepWorkload(t *testing.T, dir string, fsys vfs.FS) (acked []int) {
	t.Helper()
	checkTyped := func(step string, err error) {
		if err != nil && !errors.Is(err, repro.ErrStorage) && !errors.Is(err, repro.ErrDegraded) {
			t.Errorf("%s: error %v wraps neither ErrStorage nor ErrDegraded", step, err)
		}
	}
	db, err := repro.Open(dir, sweepOptions(fsys))
	if err != nil {
		checkTyped("open", err)
		return nil
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Append(sweepRecord(i)); err == nil {
			acked = append(acked, i)
		} else {
			checkTyped(fmt.Sprintf("append %d", i), err)
		}
	}
	_ = db.Compact() // may fail; data stays durable in the WAL
	for i := 4; i < 7; i++ {
		if _, err := db.Append(sweepRecord(i)); err == nil {
			acked = append(acked, i)
		} else {
			checkTyped(fmt.Sprintf("append %d", i), err)
		}
	}
	_ = db.Close()

	db2, err := repro.Open(dir, sweepOptions(fsys))
	if err != nil {
		checkTyped("reopen", err)
		return acked
	}
	for i := 7; i < 9; i++ {
		if _, err := db2.Append(sweepRecord(i)); err == nil {
			acked = append(acked, i)
		} else {
			checkTyped(fmt.Sprintf("append %d", i), err)
		}
	}
	_ = db2.Close()
	return acked
}

// verifyAcked opens dir through the real OS and asserts every
// acknowledged append is present.
func verifyAcked(t *testing.T, label, dir string, acked []int) {
	t.Helper()
	db, err := repro.Open(dir, repro.OpenOptions{})
	if err != nil {
		t.Errorf("%s: clean reopen after the fault failed: %v", label, err)
		return
	}
	defer db.Close()
	snap := db.Snapshot()
	for _, i := range acked {
		if snap.Support([]string{fmt.Sprintf("e%d", i)}) < 1 {
			t.Errorf("%s: acknowledged append %d lost (recovered %d sequences)", label, i, snap.NumSequences())
		}
	}
}

func TestFaultSweepSingleFault(t *testing.T) {
	// Pass 1: count the workload's filesystem operations fault-free.
	probeDir := t.TempDir()
	probeFS := vfs.NewFaultFS(vfs.OS)
	probeAcked := runSweepWorkload(t, probeDir, probeFS)
	if len(probeAcked) != 9 {
		t.Fatalf("fault-free workload acked %d/9 appends", len(probeAcked))
	}
	verifyAcked(t, "fault-free", probeDir, probeAcked)
	totalOps := probeFS.Ops()
	if totalOps < 20 {
		t.Fatalf("workload performed only %d filesystem ops; the sweep would be vacuous", totalOps)
	}
	t.Logf("sweeping %d operation indices × 3 fault flavors", totalOps)

	flavors := []struct {
		name  string
		fault vfs.Fault
	}{
		{"enospc", vfs.Fault{Op: vfs.OpAny, Err: syscall.ENOSPC}},
		{"eio", vfs.Fault{Op: vfs.OpAny, Err: syscall.EIO}},
		// Short write: the kernel accepts a prefix, then the disk is full
		// — the torn-frame / torn-segment case.
		{"enospc-short", vfs.Fault{Op: vfs.OpAny, Err: syscall.ENOSPC, ShortWrite: 5}},
	}
	for _, fl := range flavors {
		for idx := 0; idx < totalOps; idx++ {
			label := fmt.Sprintf("%s@%d", fl.name, idx)
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS)
			f := fl.fault
			f.At = idx
			rule := ffs.AddFault(f)
			acked := runSweepWorkload(t, dir, ffs)
			if !ffs.Fired(rule) {
				// Indices past a degraded store's fast-reject cutoff can
				// legitimately never be reached; nothing to verify beyond
				// the usual invariants.
				t.Logf("%s: fault never fired (workload performed %d ops)", label, ffs.Ops())
			}
			verifyAcked(t, label, dir, acked)
			if t.Failed() {
				t.Fatalf("%s: stopping sweep at first failing injection point", label)
			}
		}
	}
}

package integration

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
)

// Crash-recovery integration test: the real reprod binary is started
// with -data-dir -fsync=always, fed an upload plus a stream of append
// requests, SIGKILLed while an append stream is in flight, and
// restarted. Every append the server acknowledged must be present after
// recovery, and mining the recovered database over HTTP must be
// byte-identical to mining the same database built in memory — asserted
// across both repository fixtures × minsup {2, 6, 10}.

// crashFixtures are the repository's data fixtures.
var crashFixtures = []struct {
	name   string
	path   string
	format repro.Format
}{
	{"example11", "../../testdata/example11.chars", repro.Chars},
	{"traces", "../../testdata/traces.tokens", repro.Tokens},
}

// buildReprod compiles cmd/reprod once per test run.
func buildReprod(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "reprod")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/reprod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/reprod: %v\n%s", err, out)
	}
	return bin
}

// reprodProc is one running reprod instance.
type reprodProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startReprod launches the binary and waits for its listening banner.
// extra flags follow the address and data-dir (e.g. "-fsync",
// "interval"); with none, the binary's defaults apply (fsync=always).
func startReprod(t *testing.T, bin, dataDir string, extra ...string) *reprodProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " listening on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len(" listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &reprodProc{cmd: cmd, base: "http://" + addr}
	case <-time.After(15 * time.Second):
		t.Fatal("reprod did not report a listening address")
		return nil
	}
}

// sigkill delivers SIGKILL — no shutdown handler runs, exactly like a
// machine reset from the WAL's point of view (minus page-cache loss,
// which fsync=always covers).
func (p *reprodProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func httpPost(t *testing.T, url, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// appendRecordLine builds the i-th NDJSON append record for a fixture:
// a mix of upserts of an existing label and fresh sequences, event names
// drawn from the fixture's alphabet so supports actually move. The
// payloads deliberately keep per-sequence repetition low: repetitive
// gapped subsequence mining is exponential in within-sequence repeats,
// and this test wants fast byte-parity checks, not a stress run.
func appendRecordLine(f string, i int) string {
	if f == "example11" {
		if i%4 == 0 {
			return `{"label":"S1","events":["C","D"]}`
		}
		return fmt.Sprintf(`{"label":"X%d","events":["A","B","C","D"]}`, i)
	}
	if i%4 == 0 {
		return `{"label":"T1","events":["request","response"]}`
	}
	return fmt.Sprintf(`{"label":"U%d","events":["open","auth","error","close"]}`, i)
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the reprod binary; skipped in -short mode")
	}
	bin := buildReprod(t)
	dataDir := t.TempDir()
	proc := startReprod(t, bin, dataDir, "-fsync", "always")

	// Upload both fixtures and stream acknowledged appends.
	fixtureData := map[string]string{}
	acked := map[string]int{}
	for _, f := range crashFixtures {
		data, err := os.ReadFile(f.path)
		if err != nil {
			t.Fatal(err)
		}
		fixtureData[f.name] = string(data)
		code, body := httpPost(t, fmt.Sprintf("%s/v1/databases/%s?format=%s", proc.base, f.name, f.format), "text/plain", string(data))
		if code != http.StatusCreated {
			t.Fatalf("upload %s: %d %s", f.name, code, body)
		}
		// One record per request: each 200 is one durably-acknowledged
		// append under fsync=always.
		for i := 0; i < 12; i++ {
			code, body := httpPost(t, fmt.Sprintf("%s/v1/databases/%s/append", proc.base, f.name),
				"application/x-ndjson", appendRecordLine(f.name, i)+"\n")
			if code != http.StatusOK {
				t.Fatalf("append %s #%d: %d %s", f.name, i, code, body)
			}
			acked[f.name]++
		}
	}

	// Kill the server while a long append stream is in flight against a
	// scratch database: everything that stream would add is
	// unacknowledged and may legitimately vanish (in whole or in part),
	// and the kill lands mid-stream so partial WAL frames and torn tails
	// are on the table. The scratch target keeps the two fixtures
	// byte-comparable after recovery.
	code, body := httpPost(t, proc.base+"/v1/databases/scratch?format=tokens", "text/plain", "K1: k0 k1 k2\n")
	if code != http.StatusCreated {
		t.Fatalf("upload scratch: %d %s", code, body)
	}
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		var sb strings.Builder
		for i := 0; i < 200000; i++ {
			fmt.Fprintf(&sb, `{"events":["k%d","k%d","k%d"]}`+"\n", i%7, (i+1)%7, (i+2)%7)
		}
		// Best-effort: the connection dies under SIGKILL.
		http.Post(proc.base+"/v1/databases/scratch/append", "application/x-ndjson", strings.NewReader(sb.String()))
	}()
	time.Sleep(50 * time.Millisecond) // let the stream get going
	proc.sigkill(t)
	<-inflight

	// Restart over the same data dir.
	proc2 := startReprod(t, bin, dataDir, "-fsync", "always")

	for _, f := range crashFixtures {
		// Reference: the same acknowledged state built in memory.
		want, err := repro.Load(strings.NewReader(fixtureData[f.name]), f.format)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < acked[f.name]; i++ {
			line := appendRecordLine(f.name, i)
			var rec struct {
				Label  string   `json:"label"`
				Events []string `json:"events"`
			}
			if err := jsonUnmarshal(line, &rec); err != nil {
				t.Fatal(err)
			}
			if _, err := want.Append([]repro.Record{{Label: rec.Label, Events: rec.Events}}); err != nil {
				t.Fatal(err)
			}
		}
		wantN := want.NumSequences()

		// Every acknowledged append — and nothing else — survived: the
		// killed stream targeted only the scratch database.
		var stats struct {
			Stats struct {
				NumSequences int `json:"numSequences"`
				TotalLength  int `json:"totalLength"`
			} `json:"stats"`
		}
		resp, err := http.Get(proc2.base + "/v1/databases/" + f.name + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := jsonUnmarshal(string(data), &stats); err != nil {
			t.Fatal(err)
		}
		if stats.Stats.NumSequences != wantN || stats.Stats.TotalLength != want.Stats().TotalLength {
			t.Fatalf("%s: recovered %d sequences / %d events, want %d / %d",
				f.name, stats.Stats.NumSequences, stats.Stats.TotalLength, wantN, want.Stats().TotalLength)
		}

		assertMiningParity(t, proc2.base, f.name, want)
	}

	// The scratch database the kill interrupted must recover too: its
	// upload plus whatever full chunks were applied-and-logged before the
	// SIGKILL — never an error, never a corrupted boot.
	resp, err := http.Get(proc2.base + "/v1/databases/scratch/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var scratch struct {
		Stats struct {
			NumSequences int `json:"numSequences"`
		} `json:"stats"`
	}
	if err := jsonUnmarshal(string(data), &scratch); err != nil {
		t.Fatal(err)
	}
	if scratch.Stats.NumSequences < 1 {
		t.Fatalf("scratch database lost its upload: %s", data)
	}
	t.Logf("scratch recovered with %d sequences (1 uploaded + unacked in-flight chunks)", scratch.Stats.NumSequences)
}

// TestCrashRecoverySIGKILLInterval runs the kill under -fsync interval:
// the weaker policy's contract is a bounded loss window, not zero loss.
// SIGKILL spares the OS page cache, so every append the server APPLIED
// survives even unsynced; the assertion is the recovered count lands in
// [upload + acked, upload + acked + attempted] — nothing acked vanishes,
// nothing is invented, and recovery never errors on whatever tail the
// kill left.
func TestCrashRecoverySIGKILLInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the reprod binary; skipped in -short mode")
	}
	bin := buildReprod(t)
	dataDir := t.TempDir()
	proc := startReprod(t, bin, dataDir, "-fsync", "interval", "-fsync-interval", "25ms")

	code, body := httpPost(t, proc.base+"/v1/databases/scratch?format=tokens", "text/plain", "K1: k0 k1 k2\n")
	if code != http.StatusCreated {
		t.Fatalf("upload scratch: %d %s", code, body)
	}
	// Acked appends, one sequence each, then several fsync intervals of
	// quiet so the background sync has flushed them.
	const acked = 10
	for i := 0; i < acked; i++ {
		code, body := httpPost(t, proc.base+"/v1/databases/scratch/append",
			"application/x-ndjson", fmt.Sprintf(`{"label":"A%d","events":["k1","k2"]}`+"\n", i))
		if code != http.StatusOK {
			t.Fatalf("append #%d: %d %s", i, code, body)
		}
	}
	time.Sleep(300 * time.Millisecond)

	// Kill mid-stream: everything in this stream is unacknowledged and
	// bounds the loss window from above.
	const attempted = 200000
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		var sb strings.Builder
		for i := 0; i < attempted; i++ {
			fmt.Fprintf(&sb, `{"events":["k%d","k%d"]}`+"\n", i%5, (i+1)%5)
		}
		http.Post(proc.base+"/v1/databases/scratch/append", "application/x-ndjson", strings.NewReader(sb.String()))
	}()
	time.Sleep(50 * time.Millisecond)
	proc.sigkill(t)
	<-inflight

	proc2 := startReprod(t, bin, dataDir, "-fsync", "interval", "-fsync-interval", "25ms")
	resp, err := http.Get(proc2.base + "/v1/databases/scratch/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Stats struct {
			NumSequences int `json:"numSequences"`
		} `json:"stats"`
	}
	if err := jsonUnmarshal(string(data), &stats); err != nil {
		t.Fatal(err)
	}
	const uploaded = 1
	if n := stats.Stats.NumSequences; n < uploaded+acked || n > uploaded+acked+attempted {
		t.Fatalf("recovered %d sequences, want within [%d, %d]", n, uploaded+acked, uploaded+acked+attempted)
	}
	t.Logf("interval recovery: %d sequences (%d uploaded + %d acked + in-flight tail)",
		stats.Stats.NumSequences, uploaded, acked)
}

// assertMiningParity mines the recovered database over HTTP and the
// in-memory reference locally, across minsup {2,6,10} × {GSgrow,
// CloGSgrow}, asserting identical pattern sequences.
func assertMiningParity(t *testing.T, base, name string, want *repro.Database) {
	t.Helper()
	for _, minsup := range []int{2, 6, 10} {
		for _, closed := range []bool{false, true} {
			code, body := httpPost(t, base+"/v1/databases/"+name+"/mine", "application/json",
				fmt.Sprintf(`{"minSupport":%d,"closed":%t}`, minsup, closed))
			if code != http.StatusOK {
				t.Fatalf("mine %s minsup=%d: %d %s", name, minsup, code, body)
			}
			var got struct {
				Patterns []struct {
					Events  []string `json:"events"`
					Support int      `json:"support"`
				} `json:"patterns"`
			}
			if err := jsonUnmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			var ref *repro.Result
			var err error
			if closed {
				ref, err = want.MineClosed(repro.Options{MinSupport: minsup})
			} else {
				ref, err = want.Mine(repro.Options{MinSupport: minsup})
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Patterns) != len(ref.Patterns) {
				t.Fatalf("%s minsup=%d closed=%t: %d patterns over HTTP, %d in memory",
					name, minsup, closed, len(got.Patterns), len(ref.Patterns))
			}
			for i := range ref.Patterns {
				if strings.Join(got.Patterns[i].Events, "\x00") != strings.Join(ref.Patterns[i].Events, "\x00") ||
					got.Patterns[i].Support != ref.Patterns[i].Support {
					t.Fatalf("%s minsup=%d closed=%t pattern %d: got %v/%d, want %v/%d",
						name, minsup, closed, i,
						got.Patterns[i].Events, got.Patterns[i].Support,
						ref.Patterns[i].Events, ref.Patterns[i].Support)
				}
			}
		}
	}
}

func jsonUnmarshal(data string, v any) error {
	return json.Unmarshal([]byte(data), v)
}

package datagen

import (
	"math"
	"testing"

	"repro/internal/seq"
)

func TestQuestShapeAndDeterminism(t *testing.T) {
	p := QuestParams{D: 1, C: 20, N: 1, S: 10, Seed: 42}
	db, err := Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 1000 {
		t.Errorf("sequences = %d, want 1000", db.NumSequences())
	}
	st := seq.ComputeStats(db)
	if math.Abs(st.AvgLength-20) > 3 {
		t.Errorf("avg length = %.2f, want ≈20", st.AvgLength)
	}
	if st.DistinctEvents > 1000 {
		t.Errorf("distinct events = %d, want <= 1000", st.DistinctEvents)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("invalid DB: %v", err)
	}
	// Determinism.
	db2, err := Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	if db2.TotalLength() != db.TotalLength() || db2.NumSequences() != db.NumSequences() {
		t.Error("same seed produced different database")
	}
	for i := range db.Seqs {
		for j := range db.Seqs[i] {
			if db.Seqs[i][j] != db2.Seqs[i][j] {
				t.Fatalf("sequence %d differs at %d", i, j)
			}
		}
	}
	// Different seed produces different data.
	p.Seed = 43
	db3, err := Quest(p)
	if err != nil {
		t.Fatal(err)
	}
	same := db3.TotalLength() == db.TotalLength()
	if same {
		diff := false
		for i := range db.Seqs {
			if len(db.Seqs[i]) != len(db3.Seqs[i]) {
				diff = true
				break
			}
		}
		if !diff {
			t.Log("same total length across seeds (possible but unlikely); not failing")
		}
	}
}

func TestQuestName(t *testing.T) {
	p := QuestParams{D: 5, C: 20, N: 10, S: 20}
	if p.Name() != "D5C20N10S20" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestQuestValidation(t *testing.T) {
	bad := []QuestParams{
		{D: 0, C: 20, N: 10, S: 20},
		{D: 5, C: 0, N: 10, S: 20},
		{D: 5, C: 20, N: 0, S: 20},
		{D: 5, C: 20, N: 10, S: 0},
		{D: 5, C: 20, N: 10, S: 20, Corruption: 1.5},
	}
	for _, p := range bad {
		if _, err := Quest(p); err == nil {
			t.Errorf("accepted %+v", p)
		}
	}
}

func TestQuestRepetition(t *testing.T) {
	// The generator must produce within-sequence repetition: some frequent
	// event should occur more than once in some sequence.
	db, err := Quest(QuestParams{D: 1, C: 50, N: 1, S: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	repeats := 0
	for _, s := range db.Seqs {
		counts := map[seq.EventID]int{}
		for _, e := range s {
			counts[e]++
			if counts[e] == 2 {
				repeats++
				break
			}
		}
	}
	if repeats < db.NumSequences()/10 {
		t.Errorf("only %d/%d sequences have any repeated event", repeats, db.NumSequences())
	}
}

func TestGazelleShape(t *testing.T) {
	// Scaled down for test speed but with the real length cap.
	db, err := Gazelle(GazelleParams{NumSequences: 5000, NumEvents: 1423, MaxLength: 651, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := seq.ComputeStats(db)
	if st.NumSequences != 5000 {
		t.Errorf("sequences = %d", st.NumSequences)
	}
	if st.MaxLength != 651 {
		t.Errorf("max length = %d, want 651 (pinned)", st.MaxLength)
	}
	if st.AvgLength < 2 || st.AvgLength > 5 {
		t.Errorf("avg length = %.2f, want ≈3", st.AvgLength)
	}
	if st.DistinctEvents > 1423 {
		t.Errorf("distinct events = %d", st.DistinctEvents)
	}
	if err := db.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGazelleDefaultsAndValidation(t *testing.T) {
	p := GazelleParams{}.withDefaults()
	if p.NumSequences != 29369 || p.NumEvents != 1423 || p.MaxLength != 651 {
		t.Errorf("defaults: %+v", p)
	}
	if err := (GazelleParams{NumSequences: -1}).Validate(); err == nil {
		t.Error("negative NumSequences accepted")
	}
}

func TestTCASShape(t *testing.T) {
	db, err := TCAS(TCASParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := seq.ComputeStats(db)
	if st.NumSequences != 1578 {
		t.Errorf("traces = %d, want 1578", st.NumSequences)
	}
	if st.DistinctEvents > 75 {
		t.Errorf("distinct events = %d, want <= 75", st.DistinctEvents)
	}
	if db.NumEvents() != 75 {
		t.Errorf("vocabulary = %d, want 75", db.NumEvents())
	}
	if st.MaxLength > 70 {
		t.Errorf("max length = %d, want <= 70", st.MaxLength)
	}
	if st.AvgLength < 25 || st.AvgLength > 45 {
		t.Errorf("avg length = %.2f, want ≈36", st.AvgLength)
	}
	if err := db.Validate(); err != nil {
		t.Error(err)
	}
	// Every trace begins with the entry block and ends with the exit block.
	for i, s := range db.Seqs {
		if db.Dict.Name(s.At(1)) != "main.enter" || db.Dict.Name(s.At(len(s))) != "main.exit" {
			t.Fatalf("trace %d does not follow the automaton", i)
		}
	}
}

func TestTCASValidation(t *testing.T) {
	if _, err := TCAS(TCASParams{MaxLength: 5}); err == nil {
		t.Error("tiny MaxLength accepted")
	}
}

func TestJBossShape(t *testing.T) {
	db, err := JBoss(JBossParams{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := seq.ComputeStats(db)
	if st.NumSequences != 28 {
		t.Errorf("traces = %d, want 28", st.NumSequences)
	}
	if db.NumEvents() != 64 {
		t.Errorf("vocabulary = %d, want 64", db.NumEvents())
	}
	if st.MaxLength != 125 {
		t.Errorf("max length = %d, want 125 (pinned)", st.MaxLength)
	}
	if st.AvgLength < 75 || st.AvgLength > 110 {
		t.Errorf("avg length = %.2f, want ≈91", st.AvgLength)
	}
	if err := db.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJBossCanonicalFlowEmbedded(t *testing.T) {
	// Every trace must contain the canonical flow as a subsequence, so the
	// case study can rediscover it at min_sup = NumTraces.
	db, err := JBoss(JBossParams{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flow := JBossCanonicalFlow()
	if len(flow) != 66 {
		t.Fatalf("canonical flow has %d events, want 66 (Figure 7)", len(flow))
	}
	flowIDs, err := db.EventSeq(flow)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range db.Seqs {
		j := 0
		for _, e := range s {
			if j < len(flowIDs) && e == flowIDs[j] {
				j++
			}
		}
		if j != len(flowIDs) {
			t.Errorf("trace %d does not embed the canonical flow (matched %d/%d)", i, j, len(flowIDs))
		}
	}
}

func TestJBossLockUnlockDominates(t *testing.T) {
	// The case study's most frequent 2-event behaviour is Lock -> Unlock.
	db, err := JBoss(JBossParams{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lock := db.Dict.Lookup("TransImpl.lock")
	unlock := db.Dict.Lookup("TransImpl.unlock")
	if lock == seq.NoEvent || unlock == seq.NoEvent {
		t.Fatal("lock/unlock events missing")
	}
	// Count per-trace occurrences; lock must appear many times per trace.
	for i, s := range db.Seqs {
		locks := 0
		for _, e := range s {
			if e == lock {
				locks++
			}
		}
		if locks < 8 {
			t.Errorf("trace %d has only %d lock events", i, locks)
		}
	}
}

func TestJBossValidation(t *testing.T) {
	if _, err := JBoss(JBossParams{MaxLength: 30}); err == nil {
		t.Error("MaxLength below flow size accepted")
	}
}

func TestPoisson(t *testing.T) {
	r := newTestRand()
	for _, mean := range []float64{0, 0.5, 3, 12, 50} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(r, mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.1+0.1 {
			t.Errorf("poisson mean %v: sample mean %.2f", mean, got)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	r := newTestRand()
	cum := []float64{0.25, 0.75, 1.0}
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[pickWeighted(r, cum)]++
	}
	if math.Abs(float64(counts[0])/30000-0.25) > 0.02 ||
		math.Abs(float64(counts[1])/30000-0.5) > 0.02 {
		t.Errorf("weighted pick distribution off: %v", counts)
	}
}

func TestSessionLengthBounds(t *testing.T) {
	r := newTestRand()
	for i := 0; i < 100000; i++ {
		n := sessionLength(r, 651)
		if n < 1 || n > 651 {
			t.Fatalf("session length %d out of bounds", n)
		}
	}
}

// Package datagen synthesizes the four workloads of the paper's evaluation:
// an IBM Quest-style generator (the D/C/N/S parameterization of Agrawal &
// Srikant used for Figures 2, 5 and 6), a Gazelle-like click-stream
// (Figure 3), a TCAS-like software-trace set (Figure 4), and JBoss-like
// transaction-component traces (the Section IV-B case study and Figure 7).
//
// The original artifacts are unavailable (proprietary IBM binary, KDD-Cup
// data, Siemens traces, industrial JBoss traces); each generator matches
// the published dataset statistics and the structural properties the
// paper's experiments rely on. See DESIGN.md §5 for the substitution
// rationale. All generators are deterministic given their Seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/seq"
)

// QuestParams mirrors the synthetic data generator's knobs as the paper
// names them: |SeqDB| = D·1000 sequences, C average events per sequence,
// N·1000 distinct events, and S the average length of the maximal
// potentially-frequent sequences planted in the data.
type QuestParams struct {
	D int // number of sequences, in thousands
	C int // average events per sequence
	N int // number of distinct events, in thousands
	S int // average planted-pattern length

	// NumPatterns is the size of the planted-pattern pool (Quest's NS,
	// 5000 in the original; scaled-down runs use fewer). 0 selects
	// max(25, D*20).
	NumPatterns int
	// Corruption is the probability an event of a planted pattern is
	// dropped when pasted into a sequence (Quest's corruption level);
	// 0 selects 0.25.
	Corruption float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Name renders the parameterization the way the paper labels datasets,
// e.g. "D5C20N10S20".
func (p QuestParams) Name() string {
	return fmt.Sprintf("D%dC%dN%dS%d", p.D, p.C, p.N, p.S)
}

func (p QuestParams) withDefaults() QuestParams {
	if p.NumPatterns == 0 {
		// Scale the pool with the database so pattern frequencies stay in
		// the regime of the paper's datasets (the original Quest default is
		// NS = 5000 for D >= 10).
		p.NumPatterns = p.D * 400
		if p.NumPatterns < 200 {
			p.NumPatterns = 200
		}
		if p.NumPatterns > 5000 {
			p.NumPatterns = 5000
		}
	}
	if p.Corruption == 0 {
		p.Corruption = 0.25
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p QuestParams) Validate() error {
	if p.D < 1 || p.C < 1 || p.N < 1 || p.S < 1 {
		return fmt.Errorf("datagen: D, C, N, S must all be >= 1 (got D=%d C=%d N=%d S=%d)", p.D, p.C, p.N, p.S)
	}
	if p.Corruption < 0 || p.Corruption >= 1 {
		return fmt.Errorf("datagen: corruption must be in [0, 1), got %v", p.Corruption)
	}
	return nil
}

// Quest generates a sequence database in the style of the IBM Quest
// synthetic generator: a pool of potentially-frequent patterns is drawn
// from a Zipf-weighted event universe (with prefix reuse between
// consecutive pool entries, Quest's "correlation"), and each sequence is
// assembled by concatenating corrupted pattern instances until it reaches
// its Poisson-distributed target length. Because popular patterns are
// pasted into the same sequence repeatedly, patterns repeat both across
// and within sequences — the property repetitive-support mining exercises.
func Quest(p QuestParams) (*seq.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	numEvents := p.N * 1000
	numSeqs := p.D * 1000

	db := seq.NewDB()
	ids := make([]seq.EventID, numEvents)
	for i := 0; i < numEvents; i++ {
		ids[i] = db.Dict.Intern(fmt.Sprintf("e%d", i))
	}
	// Mild skew: popular events exist but the mass is spread widely, like
	// the average event frequency of the paper's datasets (total length /
	// distinct events ≈ 10 for D5C20N10).
	zipf := rand.NewZipf(r, 1.05, float64(numEvents)/10+1, uint64(numEvents-1))

	// Pattern pool. Lengths are Poisson(S) clipped to >= 1; each pattern
	// reuses a prefix of its predecessor with probability proportional to
	// Quest's correlation level (0.25).
	pool := make([][]seq.EventID, p.NumPatterns)
	weights := make([]float64, p.NumPatterns)
	var totalW float64
	for k := range pool {
		length := poisson(r, float64(p.S))
		if length < 1 {
			length = 1
		}
		pat := make([]seq.EventID, 0, length)
		if k > 0 && r.Float64() < 0.25 {
			prev := pool[k-1]
			take := r.Intn(len(prev)) + 1
			if take > length {
				take = length
			}
			pat = append(pat, prev[:take]...)
		}
		for len(pat) < length {
			pat = append(pat, ids[zipf.Uint64()])
		}
		pool[k] = pat
		weights[k] = r.ExpFloat64()
		totalW += weights[k]
	}
	// Cumulative weights for pattern selection.
	cum := make([]float64, len(weights))
	acc := 0.0
	for k, w := range weights {
		acc += w / totalW
		cum[k] = acc
	}

	events := make([]seq.EventID, 0, p.C*2)
	affinity := make([]int, 0, 3)
	for i := 0; i < numSeqs; i++ {
		target := poisson(r, float64(p.C))
		if target < 1 {
			target = 1
		}
		// Each sequence draws from a small per-sequence affinity set of
		// pool patterns (a customer's recurring behaviours), so long
		// sequences contain the SAME pattern several times — the
		// within-sequence repetition that repetitive support measures.
		affinity = affinity[:0]
		for n := 1 + r.Intn(3); len(affinity) < n; {
			affinity = append(affinity, pickWeighted(r, cum))
		}
		events = events[:0]
		for len(events) < target {
			pat := pool[affinity[r.Intn(len(affinity))]]
			for _, e := range pat {
				if r.Float64() < p.Corruption {
					continue // corrupted away
				}
				events = append(events, e)
				if len(events) == target {
					break
				}
			}
		}
		db.AddIDs("", events)
	}
	return db, nil
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(r.NormFloat64()*math.Sqrt(mean) + mean + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func pickWeighted(r *rand.Rand, cum []float64) int {
	x := r.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// GazelleParams configures the Gazelle-like click-stream generator. The
// defaults match the statistics the paper reports for the KDD-Cup 2000
// Gazelle dataset: 29369 sequences, 1423 distinct events, average sequence
// length 3, maximum length 651 — "although the average sequence length is
// only 3, there are a number of long sequences where a pattern may repeat
// many times".
type GazelleParams struct {
	NumSequences int   // 0 selects 29369
	NumEvents    int   // 0 selects 1423
	MaxLength    int   // 0 selects 651
	Seed         int64 // deterministic seed
}

func (p GazelleParams) withDefaults() GazelleParams {
	if p.NumSequences == 0 {
		p.NumSequences = 29369
	}
	if p.NumEvents == 0 {
		p.NumEvents = 1423
	}
	if p.MaxLength == 0 {
		p.MaxLength = 651
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p GazelleParams) Validate() error {
	p = p.withDefaults()
	if p.NumSequences < 1 || p.NumEvents < 1 || p.MaxLength < 1 {
		return fmt.Errorf("datagen: gazelle parameters must be positive: %+v", p)
	}
	return nil
}

// Gazelle generates a click-stream database: most sessions are 1-4 page
// views (geometric), a sub-percent Pareto tail produces very long sessions
// up to MaxLength, and page popularity is Zipf. Within a session the
// visitor browses in bursts — each selected page is viewed 1-3 times in a
// row (refreshes) and with probability 0.25 the next page is a revisit of
// one of the last five distinct pages (back-navigation) — giving long
// sessions heavy but *local* within-sequence repetition, the structure the
// paper uses Gazelle to demonstrate, without the combinatorial explosion a
// uniform whole-session revisit model would create. One session is pinned
// to MaxLength so the dataset's published maximum is reproduced exactly.
func Gazelle(p GazelleParams) (*seq.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	db := seq.NewDB()
	ids := make([]seq.EventID, p.NumEvents)
	for i := range ids {
		ids[i] = db.Dict.Intern(fmt.Sprintf("page%d", i))
	}
	// Mild skew: the most popular page draws on the order of 1% of all
	// clicks, as in the real dataset, rather than a degenerate head.
	zipf := rand.NewZipf(r, 1.05, float64(p.NumEvents)/20+1, uint64(p.NumEvents-1))

	session := make([]seq.EventID, 0, 64)
	var recent []seq.EventID // recently visited pages, most recent last
	for i := 0; i < p.NumSequences; i++ {
		length := sessionLength(r, p.MaxLength)
		if i == 0 {
			length = p.MaxLength // pin the published maximum
		}
		session = session[:0]
		recent = recent[:0]
		for len(session) < length {
			var page seq.EventID
			if len(recent) > 0 && r.Float64() < 0.25 {
				page = recent[r.Intn(len(recent))] // back-navigation
			} else {
				page = ids[zipf.Uint64()]
			}
			recent = append(recent, page)
			if len(recent) > 5 {
				recent = recent[1:]
			}
			// Burst: the page is viewed 1-3 times in a row (refreshes).
			views := 1
			for views < 3 && r.Float64() < 0.25 {
				views++
			}
			for v := 0; v < views && len(session) < length; v++ {
				session = append(session, page)
			}
		}
		db.AddIDs("", session)
	}
	return db, nil
}

// sessionLength draws the session-length distribution: geometric with mean
// ≈2.6 for the bulk, plus a 0.4% Pareto tail reaching into the hundreds.
func sessionLength(r *rand.Rand, maxLen int) int {
	var n int
	if r.Float64() < 0.004 {
		// Pareto tail: 30..maxLen.
		n = 30 + int(float64(maxLen-30)*pow(r.Float64(), 3))
	} else {
		n = 1
		for r.Float64() < 0.61 && n < 25 {
			n++
		}
	}
	if n > maxLen {
		n = maxLen
	}
	if n < 1 {
		n = 1
	}
	return n
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// TCASParams configures the TCAS-like trace generator. Defaults match the
// paper's description of the Traffic alert and Collision Avoidance System
// dataset: 1578 sequences over 75 distinct events, average length 36,
// maximum length 70.
type TCASParams struct {
	NumTraces int   // 0 selects 1578
	MaxLength int   // 0 selects 70
	Seed      int64 // deterministic seed
}

func (p TCASParams) withDefaults() TCASParams {
	if p.NumTraces == 0 {
		p.NumTraces = 1578
	}
	if p.MaxLength == 0 {
		p.MaxLength = 70
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p TCASParams) Validate() error {
	p = p.withDefaults()
	if p.NumTraces < 1 || p.MaxLength < 20 {
		return fmt.Errorf("datagen: tcas needs NumTraces >= 1 and MaxLength >= 20: %+v", p)
	}
	return nil
}

// tcasEvents is the 75-event vocabulary: function-level events of a
// collision-avoidance controller, organized into the blocks emitted by the
// control-flow automaton below.
var tcasEvents = buildTCASEvents()

func buildTCASEvents() (blocks struct {
	entry, exit []string
	branches    [][]string
	rare        []string
	all         []string
}) {
	blocks.entry = []string{
		"main.enter", "init.read_inputs", "init.validate", "alt.layer_select", "track.update",
	}
	blocks.exit = []string{"resolve.report", "main.exit"}
	// Eight loop branches of 6-9 events each: the monitoring cycle.
	names := [][]string{
		{"cycle.begin", "own.alt_read", "other.alt_read", "sep.vertical", "sep.horizontal", "cycle.commit"},
		{"cycle.begin", "own.alt_read", "other.tracked", "threat.classify", "threat.range_test", "threat.alt_test", "cycle.commit"},
		{"cycle.begin", "advisory.eval", "advisory.upward", "advisory.strength", "advisory.issue", "alarm.raise", "cycle.commit"},
		{"cycle.begin", "advisory.eval", "advisory.downward", "advisory.strength", "advisory.issue", "alarm.raise", "cycle.commit"},
		{"cycle.begin", "intent.recv", "intent.decode", "intent.apply", "sep.vertical", "cycle.commit"},
		{"cycle.begin", "radar.ping", "radar.echo", "track.correlate", "track.smooth", "track.predict", "cycle.commit"},
		{"cycle.begin", "crossing.check", "crossing.own_above", "sep.projected", "advisory.eval", "advisory.none", "cycle.commit"},
		{"cycle.begin", "crossing.check", "crossing.own_below", "sep.projected", "advisory.eval", "advisory.none", "cycle.commit"},
	}
	blocks.branches = names
	blocks.rare = []string{
		"fault.sensor", "fault.recover", "mode.standby", "mode.resume", "alarm.clear",
		"config.reload", "xpndr.fault", "xpndr.restore",
	}
	seen := map[string]bool{}
	add := func(list []string) {
		for _, e := range list {
			if !seen[e] {
				seen[e] = true
				blocks.all = append(blocks.all, e)
			}
		}
	}
	add(blocks.entry)
	for _, b := range names {
		add(b)
	}
	add(blocks.rare)
	add(blocks.exit)
	// Pad the vocabulary to exactly 75 with auxiliary diagnostics events
	// used sparsely inside the loop.
	for i := 0; len(blocks.all) < 75; i++ {
		e := fmt.Sprintf("diag.probe%d", i)
		blocks.rare = append(blocks.rare, e)
		blocks.all = append(blocks.all, e)
	}
	return blocks
}

// TCAS generates software execution traces from a looped control-flow
// automaton: entry block, a geometric number of monitoring-cycle
// iterations each taking one of eight branches (with occasional rare
// fault/mode events), then an exit block. Loops give patterns heavy
// within-trace repetition over a small alphabet — the regime in which the
// paper's Figure 4 shows GSgrow exploding while CloGSgrow survives down to
// min_sup = 1.
func TCAS(p TCASParams) (*seq.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	db := seq.NewDB()
	for _, e := range tcasEvents.all {
		db.Dict.Intern(e)
	}
	trace := make([]string, 0, p.MaxLength)
	for i := 0; i < p.NumTraces; i++ {
		trace = trace[:0]
		trace = append(trace, tcasEvents.entry...)
		budget := p.MaxLength - len(tcasEvents.exit)
		// Geometric number of cycles with mean ≈4.4; each cycle 6-9 events.
		for c := 0; ; c++ {
			if c > 0 && r.Float64() < 0.23 {
				break
			}
			branch := tcasEvents.branches[r.Intn(len(tcasEvents.branches))]
			if len(trace)+len(branch) > budget {
				break
			}
			trace = append(trace, branch...)
			if r.Float64() < 0.06 {
				trace = append(trace, tcasEvents.rare[r.Intn(len(tcasEvents.rare))])
				if len(trace) > budget {
					trace = trace[:budget]
				}
			}
		}
		trace = append(trace, tcasEvents.exit...)
		db.Add(fmt.Sprintf("trace%d", i+1), trace)
	}
	return db, nil
}

package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/seq"
)

// JBossParams configures the JBoss-transaction-trace generator. Defaults
// match the case-study dataset of Section IV-B: 28 traces, 64 distinct
// events, 91 events per trace on average, longest trace 125.
type JBossParams struct {
	NumTraces int     // 0 selects 28
	MaxLength int     // 0 selects 125
	NoiseMean float64 // mean number of interleaved noise events; 0 selects 11
	Seed      int64   // deterministic seed
}

func (p JBossParams) withDefaults() JBossParams {
	if p.NumTraces == 0 {
		p.NumTraces = 28
	}
	if p.MaxLength == 0 {
		p.MaxLength = 125
	}
	if p.NoiseMean == 0 {
		p.NoiseMean = 11
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p JBossParams) Validate() error {
	p = p.withDefaults()
	if p.NumTraces < 1 || p.MaxLength < len(jbossFlow())+len(jbossEnlistment()) {
		return fmt.Errorf("datagen: jboss needs MaxLength >= %d: %+v", len(jbossFlow())+len(jbossEnlistment()), p)
	}
	return nil
}

// The canonical 66-event transaction flow of the paper's Figure 7, block by
// block. The case-study pipeline should rediscover (a superpattern of) this
// flow as its longest pattern, with the enlistment and commit blocks merged
// — the finding the paper highlights against iterative patterns.

func jbossConnectionSetup() []string {
	return []string{
		"TransManLoc.getInstance", "TransManLoc.locate", "TransManLoc.tryJNDI", "TransManLoc.usePrivateAPI",
	}
}

func jbossTxManagerSetup() []string {
	return []string{
		"TxManager.getInstance", "TxManager.begin", "XidFactory.newXid", "XidFactory.getNextId",
		"XidImpl.getTrulyGlobalId",
	}
}

func jbossTransactionSetup() []string {
	return []string{
		"TransImpl.assocCurThd", "TransImpl.lock", "TransImpl.unlock", "TransImpl.getLocId",
		"XidImpl.getLocId", "LocId.hashCode", "TxManager.getTrans", "TransImpl.isDone",
		"TransImpl.getStatus",
	}
}

func jbossEnlistment() []string {
	return []string{
		"TxManager.getTrans", "TransImpl.isDone", "TransImpl.enlistResource", "TransImpl.lock",
		"TransImpl.createXidBranch", "XidFactory.newBranch", "TransImpl.unlock", "XidImpl.hashCode",
		"XidImpl.hashCode", "TransImpl.lock", "TransImpl.unlock", "XidImpl.hashCode",
		"TxManager.getTrans", "TransImpl.isDone", "TransImpl.equals", "TransImpl.getLocIdVal",
		"XidImpl.getLocIdVal", "TransImpl.getLocIdVal", "XidImpl.getLocIdVal",
	}
}

func jbossCommit() []string {
	return []string{
		"TxManager.commit", "TransImpl.commit", "TransImpl.lock", "TransImpl.beforePrepare",
		"TransImpl.checkIntegrity", "TransImpl.checkBeforeStatus", "TransImpl.endResources",
		"TransImpl.unlock", "XidImpl.hashCode", "TransImpl.lock", "TransImpl.unlock",
		"XidImpl.hashCode", "TransImpl.lock", "TransImpl.completeTrans", "TransImpl.cancelTimeout",
		"TransImpl.unlock", "TransImpl.lock", "TransImpl.doAfterCompletion", "TransImpl.unlock",
		"TransImpl.lock", "TransImpl.instanceDone",
	}
}

func jbossDispose() []string {
	return []string{
		"TxManager.getInstance", "TxManager.releaseTransImpl", "TransImpl.getLocalId",
		"XidImpl.getLocalId", "LocalId.hashCode", "LocalId.equals", "TransImpl.unlock",
		"XidImpl.hashCode",
	}
}

// jbossFlow returns the full 66-event canonical flow with one enlistment.
func jbossFlow() []string {
	var out []string
	out = append(out, jbossConnectionSetup()...)
	out = append(out, jbossTxManagerSetup()...)
	out = append(out, jbossTransactionSetup()...)
	out = append(out, jbossEnlistment()...)
	out = append(out, jbossCommit()...)
	out = append(out, jbossDispose()...)
	return out
}

// JBossCanonicalFlow exposes the Figure 7 flow (66 events) for tests and
// the case-study report.
func JBossCanonicalFlow() []string { return jbossFlow() }

// jbossNoisePool pads the vocabulary to 64 distinct events: server
// machinery that interleaves with transaction processing in real traces.
func jbossNoisePool() []string {
	distinct := map[string]bool{}
	for _, e := range jbossFlow() {
		distinct[e] = true
	}
	var pool []string
	for i := 0; len(distinct)+len(pool) < 64; i++ {
		pool = append(pool, fmt.Sprintf("Server.aux%d", i))
	}
	return pool
}

// JBoss generates transaction-component traces: every trace replays the
// canonical flow with 1-3 resource-enlistment repetitions before the commit
// (the within-trace repetition the case study highlights) and a Poisson
// number of noise events interleaved at random positions, capped at
// MaxLength. Trace 1 is pinned to 3 enlistments plus maximal noise so the
// published maximum length (125) is attained.
func JBoss(p JBossParams) (*seq.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	db := seq.NewDB()
	noise := jbossNoisePool()

	for i := 0; i < p.NumTraces; i++ {
		// 1-3 enlistment blocks: P(1)=.5, P(2)=.3, P(3)=.2.
		k := 1
		switch x := r.Float64(); {
		case x < 0.2:
			k = 3
		case x < 0.5:
			k = 2
		}
		if i == 0 {
			k = 3
		}
		var trace []string
		trace = append(trace, jbossConnectionSetup()...)
		trace = append(trace, jbossTxManagerSetup()...)
		trace = append(trace, jbossTransactionSetup()...)
		for j := 0; j < k; j++ {
			trace = append(trace, jbossEnlistment()...)
		}
		trace = append(trace, jbossCommit()...)
		trace = append(trace, jbossDispose()...)

		nNoise := poisson(r, p.NoiseMean)
		if i == 0 {
			nNoise = p.MaxLength - len(trace)
		}
		if len(trace)+nNoise > p.MaxLength {
			nNoise = p.MaxLength - len(trace)
		}
		for j := 0; j < nNoise; j++ {
			pos := r.Intn(len(trace) + 1)
			e := noise[r.Intn(len(noise))]
			trace = append(trace[:pos], append([]string{e}, trace[pos:]...)...)
		}
		db.Add(fmt.Sprintf("trace%d", i+1), trace)
	}
	return db, nil
}

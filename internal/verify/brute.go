// Package verify provides brute-force reference implementations used to
// validate the miner: repetitive support computed as maximum node-disjoint
// paths (a max-flow formulation independent of the paper's greedy instance
// growth), exhaustive landmark enumeration, exhaustive frequent/closed
// pattern enumeration, and leftmost-dominance checks. Everything here is
// exponential or polynomial-but-slow on purpose; use only on small inputs.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/seq"
)

// Support returns the repetitive support of pattern in db, computed
// independently of instance growth: per sequence, the maximum number of
// pairwise non-overlapping instances equals the maximum number of
// node-disjoint paths through the layered occurrence DAG (layer j holds the
// positions of pattern[j]; edges go to strictly larger positions in the
// next layer; "non-overlapping" = no shared node within a layer), which is
// a unit-node-capacity max flow. Supports of different sequences add up
// because instances in different sequences never overlap (Definition 2.3).
func Support(db *seq.DB, pattern []seq.EventID) int {
	if len(pattern) == 0 {
		return 0
	}
	total := 0
	for i := range db.Seqs {
		total += MaxNonOverlapping(db, i, pattern)
	}
	return total
}

// MaxNonOverlapping returns the maximum size of a non-redundant instance
// set of pattern within sequence i of db, via max flow.
func MaxNonOverlapping(db *seq.DB, i int, pattern []seq.EventID) int {
	s := db.Seqs[i]
	m := len(pattern)
	// positions[j] lists 1-based occurrences of pattern[j].
	positions := make([][]int32, m)
	for j, e := range pattern {
		for p := 1; p <= len(s); p++ {
			if s.At(p) == e {
				positions[j] = append(positions[j], int32(p))
			}
		}
		if len(positions[j]) == 0 {
			return 0
		}
	}
	// Node-split graph: node (j,k) becomes in/out pair. IDs:
	// 0 = source, 1 = sink, then 2 + 2*(offset(j)+k) for in, +1 for out.
	offset := make([]int, m+1)
	for j := 0; j < m; j++ {
		offset[j+1] = offset[j] + len(positions[j])
	}
	numOcc := offset[m]
	g := newFlowGraph(2 + 2*numOcc)
	in := func(j, k int) int { return 2 + 2*(offset[j]+k) }
	out := func(j, k int) int { return in(j, k) + 1 }
	for k := range positions[0] {
		g.addEdge(0, in(0, k))
	}
	for j := 0; j < m; j++ {
		for k := range positions[j] {
			g.addEdge(in(j, k), out(j, k))
			if j == m-1 {
				g.addEdge(out(j, k), 1)
			} else {
				for k2, q := range positions[j+1] {
					if q > positions[j][k] {
						g.addEdge(out(j, k), in(j+1, k2))
					}
				}
			}
		}
	}
	return g.maxFlow(0, 1)
}

// flowGraph is a minimal unit-capacity max-flow implementation
// (BFS augmenting paths).
type flowGraph struct {
	head []int
	next []int
	to   []int
	cap  []int8
}

func newFlowGraph(n int) *flowGraph {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &flowGraph{head: h}
}

func (g *flowGraph) addEdge(u, v int) {
	g.to = append(g.to, v)
	g.cap = append(g.cap, 1)
	g.next = append(g.next, g.head[u])
	g.head[u] = len(g.to) - 1
	// reverse edge
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.next = append(g.next, g.head[v])
	g.head[v] = len(g.to) - 1
}

func (g *flowGraph) maxFlow(s, t int) int {
	flow := 0
	prevEdge := make([]int, len(g.head))
	for {
		for i := range prevEdge {
			prevEdge[i] = -1
		}
		queue := []int{s}
		prevEdge[s] = -2
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for e := g.head[u]; e != -1; e = g.next[e] {
				v := g.to[e]
				if g.cap[e] > 0 && prevEdge[v] == -1 {
					prevEdge[v] = e
					if v == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			return flow
		}
		// All capacities are 1, so the bottleneck is 1.
		for v := t; v != s; {
			e := prevEdge[v]
			g.cap[e]--
			g.cap[e^1]++
			v = g.to[e^1]
		}
		flow++
	}
}

// EnumLandmarks returns every landmark of pattern in sequence i of db, in
// lexicographic order, or an error if more than limit landmarks exist
// (guard against combinatorial explosion in tests).
func EnumLandmarks(db *seq.DB, i int, pattern []seq.EventID, limit int) ([][]int32, error) {
	s := db.Seqs[i]
	var out [][]int32
	land := make([]int32, 0, len(pattern))
	var rec func(j int, from int32) error
	rec = func(j int, from int32) error {
		if j == len(pattern) {
			if len(out) >= limit {
				return fmt.Errorf("verify: more than %d landmarks", limit)
			}
			out = append(out, append([]int32(nil), land...))
			return nil
		}
		for p := from + 1; int(p) <= len(s); p++ {
			if s.At(int(p)) == pattern[j] {
				land = append(land, p)
				if err := rec(j+1, p); err != nil {
					return err
				}
				land = land[:len(land)-1]
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// CountOccurrences returns the total number of landmarks (all instances,
// overlapping or not) of pattern in db — the naive sup_all of Section II-A
// — computed by dynamic programming in O(len(S)·len(pattern)) per sequence,
// so it is safe on large inputs.
func CountOccurrences(db *seq.DB, pattern []seq.EventID) uint64 {
	if len(pattern) == 0 {
		return 0
	}
	var total uint64
	m := len(pattern)
	for _, s := range db.Seqs {
		// ways[j] = number of landmarks of pattern[:j] ending at or before
		// the current scan position; classic distinct-subsequence DP.
		ways := make([]uint64, m+1)
		ways[0] = 1
		for p := 1; p <= len(s); p++ {
			e := s.At(p)
			for j := m; j >= 1; j-- {
				if pattern[j-1] == e {
					ways[j] += ways[j-1]
				}
			}
		}
		total += ways[m]
	}
	return total
}

// PatternSupport pairs a pattern with its support, for exhaustive
// enumeration results.
type PatternSupport struct {
	Pattern []seq.EventID
	Support int
}

// Frequent exhaustively enumerates every pattern of length <= maxLen with
// repetitive support >= minSup, using flow-based support and Apriori
// pruning (which the flow-based support provably satisfies). Results are in
// DFS preorder over ascending event IDs — the same order GSgrow emits.
func Frequent(db *seq.DB, minSup, maxLen int) []PatternSupport {
	events := distinctEvents(db)
	var out []PatternSupport
	var pattern []seq.EventID
	var rec func()
	rec = func() {
		for _, e := range events {
			pattern = append(pattern, e)
			sup := Support(db, pattern)
			if sup >= minSup {
				out = append(out, PatternSupport{append([]seq.EventID(nil), pattern...), sup})
				if len(pattern) < maxLen {
					rec()
				}
			}
			pattern = pattern[:len(pattern)-1]
		}
	}
	rec()
	return out
}

// Closed filters Frequent(db, minSup, maxLen) down to closed patterns,
// checking closedness directly from Definition 2.6 via single-event
// extensions at every position over the full alphabet (equivalent to
// checking all super-patterns, by the Apriori property). Patterns at the
// maxLen boundary are still checked against their length-(maxLen+1)
// extensions.
func Closed(db *seq.DB, minSup, maxLen int) []PatternSupport {
	events := distinctEvents(db)
	var out []PatternSupport
	for _, ps := range Frequent(db, minSup, maxLen) {
		if IsClosed(db, events, ps.Pattern, ps.Support) {
			out = append(out, ps)
		}
	}
	return out
}

// IsClosed reports whether pattern (with the given support) is closed in
// db, by trying every single-event extension at every position.
func IsClosed(db *seq.DB, events []seq.EventID, pattern []seq.EventID, support int) bool {
	ext := make([]seq.EventID, len(pattern)+1)
	for pos := 0; pos <= len(pattern); pos++ {
		copy(ext[:pos], pattern[:pos])
		copy(ext[pos+1:], pattern[pos:])
		for _, e := range events {
			ext[pos] = e
			if Support(db, ext) == support {
				return false
			}
		}
	}
	return true
}

// AllMaxSets enumerates every support set (maximum non-redundant instance
// set) of pattern within sequence i, or an error when the landmark count
// exceeds limit. Used to verify leftmost dominance (Definition 3.2) on tiny
// inputs.
func AllMaxSets(db *seq.DB, i int, pattern []seq.EventID, limit int) ([][]core.Instance, error) {
	lands, err := EnumLandmarks(db, i, pattern, limit)
	if err != nil {
		return nil, err
	}
	maxSize := MaxNonOverlapping(db, i, pattern)
	var out [][]core.Instance
	var chosen []int
	conflicts := func(a, b []int32) bool {
		for j := range a {
			if a[j] == b[j] {
				return true
			}
		}
		return false
	}
	var rec func(k int)
	rec = func(k int) {
		if len(chosen) == maxSize {
			set := make([]core.Instance, len(chosen))
			for x, idx := range chosen {
				set[x] = core.Instance{Seq: int32(i), Land: append([]int32(nil), lands[idx]...)}
			}
			core.SortRightShift(set)
			out = append(out, set)
			return
		}
		if k == len(lands) || len(chosen)+(len(lands)-k) < maxSize {
			return
		}
		// choose lands[k] if compatible
		ok := true
		for _, idx := range chosen {
			if conflicts(lands[idx], lands[k]) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, k)
			rec(k + 1)
			chosen = chosen[:len(chosen)-1]
		}
		rec(k + 1)
	}
	rec(0)
	return out, nil
}

// normalizeColumns sorts each landmark coordinate column of a
// single-sequence support set independently. By the swap argument in the
// proof of Lemma 4 ("if l'^(k-1)_j > l'^(k)_j we can safely swap ... and the
// set is still non-redundant"), the result is again a valid support set of
// the same size, now with every column ascending. Definition 3.2's
// leftmost dominance is over these normalized sets.
func normalizeColumns(set []core.Instance) []core.Instance {
	if len(set) == 0 {
		return set
	}
	m := len(set[0].Land)
	out := make([]core.Instance, len(set))
	for k := range set {
		out[k] = core.Instance{Seq: set[k].Seq, Land: make([]int32, m)}
	}
	col := make([]int32, len(set))
	for j := 0; j < m; j++ {
		for k := range set {
			col[k] = set[k].Land[j]
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		for k := range out {
			out[k].Land[j] = col[k]
		}
	}
	return out
}

// CheckLeftmostDominance verifies Definition 3.2 for the per-sequence slice
// of a support set: got (sorted right-shift) must dominate coordinate-wise
// (<=) every column-normalized support set of pattern in sequence i.
func CheckLeftmostDominance(db *seq.DB, i int, pattern []seq.EventID, got []core.Instance, limit int) error {
	sets, err := AllMaxSets(db, i, pattern, limit)
	if err != nil {
		return err
	}
	for k := range sets {
		sets[k] = normalizeColumns(sets[k])
	}
	if len(sets) == 0 {
		if len(got) != 0 {
			return fmt.Errorf("verify: got %d instances, expected none", len(got))
		}
		return nil
	}
	for _, other := range sets {
		if len(other) != len(got) {
			return fmt.Errorf("verify: got %d instances, a support set has %d", len(got), len(other))
		}
		for k := range got {
			for j := range got[k].Land {
				if got[k].Land[j] > other[k].Land[j] {
					return fmt.Errorf("verify: instance %d coordinate %d: got %d > %d in %v", k, j, got[k].Land[j], other[k].Land[j], other)
				}
			}
		}
	}
	return nil
}

func distinctEvents(db *seq.DB) []seq.EventID {
	set := make(map[seq.EventID]bool)
	for _, s := range db.Seqs {
		for _, e := range s {
			set[e] = true
		}
	}
	out := make([]seq.EventID, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

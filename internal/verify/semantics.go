package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seq"
)

// NonOverlappingSupport returns the disjoint-occurrence support of pattern
// in db: per sequence, the maximum number of occurrence windows where each
// window starts strictly after the previous window's end. Computed by
// dynamic programming over start positions — independent of the miner's
// greedy earliest-end matching — so it serves as an oracle for the
// nonoverlap semantics.
func NonOverlappingSupport(db *seq.DB, pattern []seq.EventID) int {
	if len(pattern) == 0 {
		return 0
	}
	total := 0
	for i := range db.Seqs {
		total += maxDisjointWindows(db, i, pattern)
	}
	return total
}

// maxDisjointWindows solves, per sequence, the disjoint-window maximum via
// f(p) = max(f(p+1), 1 + f(end(p)+1)), where end(p) is the minimal end of
// an occurrence whose first event sits exactly at p. Replacing any window
// by the minimal-end window with the same start can only help later
// windows, so restricting to minimal-end windows loses nothing.
func maxDisjointWindows(db *seq.DB, i int, pattern []seq.EventID) int {
	s := db.Seqs[i]
	n := len(s)
	f := make([]int, n+2)
	for p := n; p >= 1; p-- {
		f[p] = f[p+1]
		if s.At(p) != pattern[0] {
			continue
		}
		end := earliestEnd(db, i, pattern, p)
		if end > 0 && 1+f[end+1] > f[p] {
			f[p] = 1 + f[end+1]
		}
	}
	return f[1]
}

// earliestEnd returns the minimal 1-based end position of an occurrence of
// pattern in sequence i starting exactly at position start (which must
// hold pattern[0]), or 0 when none completes.
func earliestEnd(db *seq.DB, i int, pattern []seq.EventID, start int) int {
	s := db.Seqs[i]
	p := start
	for _, e := range pattern[1:] {
		p++
		for p <= len(s) && s.At(p) != e {
			p++
		}
		if p > len(s) {
			return 0
		}
	}
	return p
}

// FrequentNonOverlapping exhaustively enumerates every pattern of length
// <= maxLen with disjoint-occurrence support >= minSup, in DFS preorder
// over ascending event IDs. Deleting events from a pattern shrinks each
// occurrence window in place, so disjoint windows stay disjoint and the
// support is fully Apriori — pruning on infrequent prefixes is exact.
func FrequentNonOverlapping(db *seq.DB, minSup, maxLen int) []PatternSupport {
	events := distinctEvents(db)
	var out []PatternSupport
	var pattern []seq.EventID
	var rec func()
	rec = func() {
		for _, e := range events {
			pattern = append(pattern, e)
			sup := NonOverlappingSupport(db, pattern)
			if sup >= minSup {
				out = append(out, PatternSupport{append([]seq.EventID(nil), pattern...), sup})
				if len(pattern) < maxLen {
					rec()
				}
			}
			pattern = pattern[:len(pattern)-1]
		}
	}
	rec()
	return out
}

// CheckCompressedCover verifies a compressed-semantics result against the
// brute-force closed set: every representative must be a closed frequent
// pattern with its exact repetitive support, and every closed pattern must
// be δ-covered by some representative (the pattern is a subsequence of the
// representative and sup(rep) >= (1-delta)·sup(pattern), the same
// comparison the miner's set cover uses).
func CheckCompressedCover(db *seq.DB, minSup, maxLen int, delta float64, reps []core.Pattern) error {
	closed := Closed(db, minSup, maxLen)
	closedSup := make(map[string]int, len(closed))
	for _, ps := range closed {
		closedSup[fmt.Sprint(ps.Pattern)] = ps.Support
	}
	for _, r := range reps {
		sup, ok := closedSup[fmt.Sprint(r.Events)]
		if !ok {
			return fmt.Errorf("verify: representative %v is not a closed frequent pattern", r.Events)
		}
		if sup != r.Support {
			return fmt.Errorf("verify: representative %v has support %d, oracle says %d", r.Events, r.Support, sup)
		}
	}
	for _, ps := range closed {
		covered := false
		for _, r := range reps {
			if float64(r.Support) < (1-delta)*float64(ps.Support) {
				continue
			}
			if isSubseq(ps.Pattern, r.Events) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("verify: closed pattern %v (sup %d) is not delta-covered by %d representatives", ps.Pattern, ps.Support, len(reps))
		}
	}
	return nil
}

// isSubseq reports whether a is a (not necessarily contiguous) subsequence
// of b.
func isSubseq(a, b []seq.EventID) bool {
	if len(a) > len(b) {
		return false
	}
	k := 0
	for _, e := range b {
		if k < len(a) && a[k] == e {
			k++
		}
	}
	return k == len(a)
}

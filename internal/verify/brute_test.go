package verify

import (
	"testing"

	"repro/internal/seq"
)

func mkDB(seqs ...string) *seq.DB {
	db := seq.NewDB()
	for _, s := range seqs {
		db.AddChars("", s)
	}
	return db
}

func mkPat(t *testing.T, db *seq.DB, s string) []seq.EventID {
	t.Helper()
	names := make([]string, len(s))
	for i := range s {
		names[i] = string(s[i])
	}
	ids, err := db.EventSeq(names)
	if err != nil {
		t.Fatalf("pattern %q: %v", s, err)
	}
	return ids
}

func TestFlowSupportGoldValues(t *testing.T) {
	cases := []struct {
		seqs    []string
		pattern string
		want    int
	}{
		{[]string{"AABCDABB", "ABCD"}, "AB", 4}, // Example 1.1
		{[]string{"AABCDABB", "ABCD"}, "CD", 2},
		{[]string{"ABCABCA", "AABBCCC"}, "AB", 4},  // Example 2.2
		{[]string{"ABCABCA", "AABBCCC"}, "ABA", 2}, // Example 2.2
		{[]string{"ABCABCA", "AABBCCC"}, "ABC", 4}, // Example 2.3
		{[]string{"ABCACBDDB", "ACDBACADD"}, "ACB", 3},
		{[]string{"ABCACBDDB", "ACDBACADD"}, "ACA", 3},
		{[]string{"ABCACBDDB", "ACDBACADD"}, "A", 5},
		{[]string{"AAAA"}, "AA", 3},
		{[]string{"AAAA"}, "AAA", 2},
		{[]string{"AAAA"}, "AAAAA", 0},
		{[]string{""}, "A", 0},
	}
	for _, c := range cases {
		db := mkDB(c.seqs...)
		var p []seq.EventID
		if c.pattern != "" {
			// Events may be absent from tiny databases; intern manually.
			for i := range c.pattern {
				p = append(p, db.Dict.Intern(string(c.pattern[i])))
			}
		}
		if got := Support(db, p); got != c.want {
			t.Errorf("Support(%v, %s) = %d, want %d", c.seqs, c.pattern, got, c.want)
		}
	}
}

func TestSupportEmptyPattern(t *testing.T) {
	db := mkDB("ABC")
	if got := Support(db, nil); got != 0 {
		t.Errorf("Support(empty) = %d, want 0", got)
	}
}

func TestEnumLandmarks(t *testing.T) {
	db := mkDB("ABAB")
	p := mkPat(t, db, "AB")
	lands, err := EnumLandmarks(db, 0, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	// A at 1,3; B at 2,4: landmarks (1,2), (1,4), (3,4).
	if len(lands) != 3 {
		t.Fatalf("got %d landmarks: %v", len(lands), lands)
	}
	want := [][]int32{{1, 2}, {1, 4}, {3, 4}}
	for i := range want {
		if lands[i][0] != want[i][0] || lands[i][1] != want[i][1] {
			t.Errorf("landmark %d = %v, want %v", i, lands[i], want[i])
		}
	}
	// Limit guard.
	if _, err := EnumLandmarks(db, 0, p, 2); err == nil {
		t.Error("limit not enforced")
	}
}

func TestCountOccurrencesGoldValues(t *testing.T) {
	// Section II-A: SeqDB = {AABBCC...ZZ}: sup_all(AB) = 4,
	// sup_all(ABC...Z) = 2^26.
	var events string
	for c := byte('A'); c <= 'Z'; c++ {
		events += string(c) + string(c)
	}
	db := mkDB(events)
	if got := CountOccurrences(db, mkPat(t, db, "AB")); got != 4 {
		t.Errorf("sup_all(AB) = %d, want 4", got)
	}
	alphabet := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if got := CountOccurrences(db, mkPat(t, db, alphabet)); got != 1<<26 {
		t.Errorf("sup_all(A..Z) = %d, want %d", got, 1<<26)
	}
	// Example 2.1: AB has 3 landmarks in S1 and 4 in S2.
	db2 := mkDB("ABCABCA", "AABBCCC")
	if got := CountOccurrences(db2, mkPat(t, db2, "AB")); got != 7 {
		t.Errorf("sup_all(AB) on Table II = %d, want 7", got)
	}
	if got := CountOccurrences(db2, nil); got != 0 {
		t.Errorf("sup_all(empty) = %d, want 0", got)
	}
}

func TestFrequentAndClosedOracle(t *testing.T) {
	db := mkDB("ABCACBDDB", "ACDBACADD")
	freq := Frequent(db, 3, 5)
	supports := make(map[string]int)
	for _, ps := range freq {
		supports[db.PatternString(ps.Pattern)] = ps.Support
	}
	for p, want := range map[string]int{
		"A": 5, "D": 5, "AC": 4, "ACB": 3, "ACAD": 3, "AA": 3,
	} {
		if supports[p] != want {
			t.Errorf("oracle sup(%s) = %d, want %d", p, supports[p], want)
		}
	}
	if _, ok := supports["AAA"]; ok {
		t.Error("AAA must not be frequent at min_sup=3")
	}

	closed := Closed(db, 3, 5)
	closedSet := make(map[string]bool)
	for _, ps := range closed {
		closedSet[db.PatternString(ps.Pattern)] = true
	}
	for _, want := range []string{"ABD", "ACB", "ACAD"} {
		if !closedSet[want] {
			t.Errorf("oracle missing closed pattern %s", want)
		}
	}
	for _, nonClosed := range []string{"AB", "AA", "AAD", "AC"} {
		if closedSet[nonClosed] {
			t.Errorf("oracle reports %s closed", nonClosed)
		}
	}
}

func TestIsClosed(t *testing.T) {
	db := mkDB("ABCACBDDB", "ACDBACADD")
	events := distinctEvents(db)
	ab := mkPat(t, db, "AB")
	if IsClosed(db, events, ab, Support(db, ab)) {
		t.Error("AB reported closed; ACB has equal support")
	}
	abd := mkPat(t, db, "ABD")
	if !IsClosed(db, events, abd, Support(db, abd)) {
		t.Error("ABD reported non-closed")
	}
}

func TestAllMaxSets(t *testing.T) {
	db := mkDB("CABACBCC")
	p := mkPat(t, db, "BC")
	sets, err := AllMaxSets(db, 0, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// B at 3,6; C at 1,5,7,8. Instances: (3,5),(3,7),(3,8),(6,7),(6,8).
	// Max sets of size 2 with distinct l1 and distinct l2:
	// {(3,5),(6,7)}, {(3,5),(6,8)}, {(3,7),(6,8)}, {(3,8),(6,7)}.
	if len(sets) != 4 {
		t.Fatalf("got %d max sets, want 4: %v", len(sets), sets)
	}
	for _, s := range sets {
		if len(s) != 2 {
			t.Errorf("max set %v has size %d, want 2", s, len(s))
		}
	}
}

func TestNormalizeColumns(t *testing.T) {
	db := mkDB("CABACBCC")
	p := mkPat(t, db, "BC")
	sets, err := AllMaxSets(db, 0, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		n := normalizeColumns(s)
		// Every normalized set must still have strictly increasing rows
		// and ascending columns.
		for k := range n {
			for j := 1; j < len(n[k].Land); j++ {
				if n[k].Land[j] <= n[k].Land[j-1] {
					t.Errorf("normalized instance %v not increasing", n[k])
				}
			}
			if k > 0 {
				for j := range n[k].Land {
					if n[k].Land[j] <= n[k-1].Land[j] {
						t.Errorf("normalized column %d not ascending: %v", j, n)
					}
				}
			}
		}
	}
	if got := normalizeColumns(nil); got != nil {
		t.Errorf("normalizeColumns(nil) = %v", got)
	}
}

func TestMaxNonOverlappingPerSequence(t *testing.T) {
	db := mkDB("AABCDABB", "ABCD")
	p := mkPat(t, db, "AB")
	if got := MaxNonOverlapping(db, 0, p); got != 3 {
		t.Errorf("S1 max non-overlapping AB = %d, want 3", got)
	}
	if got := MaxNonOverlapping(db, 1, p); got != 1 {
		t.Errorf("S2 max non-overlapping AB = %d, want 1", got)
	}
}

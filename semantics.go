package repro

import (
	"fmt"

	"repro/internal/core"
)

// Semantics selects the occurrence semantics of a mining run: what counts
// as "the pattern occurs here" and therefore what its support measures.
// The zero value is SemanticsRepetitive, the paper's definition. Parse
// wire/flag names with ParseSemantics; the same names are accepted by the
// server's "semantics" JSON field and the gsgrow -semantics flag. See the
// README's "Mining modes" matrix for the mode × surface × paper map.
type Semantics int

const (
	// SemanticsRepetitive is the paper's repetitive support (Ding, Lo,
	// Han, Khoo, ICDE 2009): the maximum number of pairwise
	// non-overlapping instances, where two instances overlap only if they
	// share a position at the same pattern index. The default.
	SemanticsRepetitive Semantics = iota
	// SemanticsNonOverlapping counts disjoint occurrence windows: each
	// occurrence must start strictly after the previous one's last event
	// (the stricter non-overlapping semantics of Geng et al.,
	// arXiv:2311.09667). Support is at most the repetitive support.
	SemanticsNonOverlapping
	// SemanticsCompressed mines the closed pattern set and returns a
	// small set of representatives that δ-covers it (Tong et al.,
	// arXiv:0906.0885): every closed pattern is a subsequence of some
	// representative whose support is within a (1-CompressDelta) factor.
	// MaxPatterns caps the number of representatives.
	SemanticsCompressed
	// SemanticsGapped mines under a gap constraint: every gap between
	// consecutive pattern events must lie in [MinGap, MaxGap] (the
	// paper's Section V future-work extension; see MineGapConstrained's
	// notes on how gap constraints change the algorithm).
	SemanticsGapped
)

// DefaultCompressDelta is the support tolerance used by
// SemanticsCompressed when Options.CompressDelta is zero.
const DefaultCompressDelta = core.DefaultCompressDelta

// String returns the wire/flag name of the semantics ("repetitive",
// "nonoverlap", "compressed", "gapped").
func (s Semantics) String() string {
	switch s {
	case SemanticsRepetitive:
		return "repetitive"
	case SemanticsNonOverlapping:
		return "nonoverlap"
	case SemanticsCompressed:
		return "compressed"
	case SemanticsGapped:
		return "gapped"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// ParseSemantics maps a wire/flag name to a Semantics. The empty string
// selects the default (SemanticsRepetitive); unknown names return an
// error wrapping ErrUnknownSemantics.
func ParseSemantics(name string) (Semantics, error) {
	switch name {
	case "", "repetitive":
		return SemanticsRepetitive, nil
	case "nonoverlap":
		return SemanticsNonOverlapping, nil
	case "compressed":
		return SemanticsCompressed, nil
	case "gapped":
		return SemanticsGapped, nil
	default:
		return 0, fmt.Errorf("repro: %w %q (want repetitive, nonoverlap, compressed, or gapped)", ErrUnknownSemantics, name)
	}
}

// coreSemantics maps the public enum to the kernel's strategy value; the
// gapped mode runs its own miner and never reaches the kernel.
func coreSemantics(s Semantics) core.Semantics {
	switch s {
	case SemanticsNonOverlapping:
		return core.NonOverlapping
	case SemanticsCompressed:
		return core.Compressed
	default:
		return nil
	}
}

// validateSemantics checks the semantics-dependent option combinations
// shared by every mining surface.
func validateSemantics(opt Options, closed bool) error {
	switch opt.Semantics {
	case SemanticsRepetitive, SemanticsNonOverlapping, SemanticsCompressed, SemanticsGapped:
	default:
		return fmt.Errorf("repro: %w %s", ErrUnknownSemantics, opt.Semantics)
	}
	if opt.Semantics != SemanticsGapped && (opt.MinGap != 0 || opt.MaxGap != 0) {
		return fmt.Errorf("repro: %w: MinGap/MaxGap require SemanticsGapped (got %s)", ErrInvalidOptions, opt.Semantics)
	}
	if opt.Semantics != SemanticsCompressed && opt.CompressDelta != 0 {
		return fmt.Errorf("repro: %w: CompressDelta requires SemanticsCompressed (got %s)", ErrInvalidOptions, opt.Semantics)
	}
	if opt.CompressDelta < 0 || opt.CompressDelta >= 1 {
		return fmt.Errorf("repro: %w: CompressDelta must be in [0, 1), got %g", ErrInvalidOptions, opt.CompressDelta)
	}
	if closed && opt.Semantics == SemanticsNonOverlapping {
		return fmt.Errorf("repro: %w: closed mining is not defined under nonoverlap semantics", ErrInvalidOptions)
	}
	if closed && opt.Semantics == SemanticsGapped {
		return fmt.Errorf("repro: %w: closed mining is not defined under gapped semantics", ErrInvalidOptions)
	}
	if opt.Semantics == SemanticsGapped {
		if opt.Workers > 1 {
			return fmt.Errorf("repro: %w: the gapped miner is sequential (Workers must be <= 1)", ErrInvalidOptions)
		}
		if opt.CollectInstances {
			return fmt.Errorf("repro: %w: CollectInstances is not supported under gapped semantics", ErrInvalidOptions)
		}
	}
	return nil
}

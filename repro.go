package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gapped"
	"repro/internal/seq"
	"repro/internal/store"
)

// Format identifies an on-disk database encoding accepted by Load.
type Format int

// Supported formats. See internal/seq for the grammar of each.
const (
	// Tokens: one sequence per line, whitespace-separated event names,
	// optional "label:" prefix, '#' comments.
	Tokens Format = iota
	// Chars: one sequence per line, each byte a single-character event.
	Chars
	// SPMF: the SPMF sequence format (integer items, -1/-2 separators)
	// restricted to single-item itemsets.
	SPMF
)

// String returns the CLI/wire name of the format.
func (f Format) String() string {
	switch f {
	case Tokens:
		return "tokens"
	case Chars:
		return "chars"
	case SPMF:
		return "spmf"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

func (f Format) internal() (seq.Format, error) {
	switch f {
	case Tokens:
		return seq.FormatTokens, nil
	case Chars:
		return seq.FormatChars, nil
	case SPMF:
		return seq.FormatSPMF, nil
	default:
		return 0, fmt.Errorf("repro: %w %d", ErrUnknownFormat, int(f))
	}
}

// Database is a growing sequence database and the handle on which mining
// runs. It is a thin shell over a snapshot store: every mutation
// (Add/Append) seals the new state as an immutable snapshot, and every
// mining run executes against one snapshot — so mining concurrently with
// appends is safe by construction, with no prepare step. All methods are
// safe for concurrent use.
//
// Mining uses a FastNext index by default: per-sequence successor tables
// that answer the paper's next(S, e, lowest) primitive in O(1) instead of
// O(log L), built lazily under a memory budget (sequences whose table
// would not fit fall back to binary search individually). Runs with
// Options.DisableFastNext use a separate binary-search-only index. Once an
// index variant has been built, appends maintain it incrementally in
// O(delta) instead of rebuilding it.
type Database struct {
	// st is swapped atomically when a replica re-bootstraps onto a fresh
	// lineage (see OpenReplica); for every other database it is set once.
	// Handles taken from it (snapshots, in-flight mines) stay valid across
	// a swap — they pin the old store's immutable state.
	st atomic.Pointer[store.Store]
}

func newDatabase(st *store.Store) *Database {
	d := &Database{}
	d.st.Store(st)
	return d
}

// store returns the database's current backing store.
func (d *Database) store() *store.Store { return d.st.Load() }

// swapStore replaces the backing store; only replica re-bootstraps do
// this.
func (d *Database) swapStore(st *store.Store) { d.st.Store(st) }

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return newDatabase(store.New(store.Options{}))
}

// Load reads a database from r in the given format. Errors are wrapped
// with the format name and leave the underlying cause (e.g. a
// seq.ParseError with line information) reachable through errors.As.
func Load(r io.Reader, format Format) (*Database, error) {
	db, err := load(r, format)
	if err != nil {
		return nil, fmt.Errorf("repro: load (format %s): %w", format, err)
	}
	return db, nil
}

// LoadFile reads a database from the named file. Errors are wrapped with
// the path and format so that callers juggling many inputs can tell which
// one failed; the underlying cause (os.ErrNotExist, parse errors with line
// numbers) stays reachable through errors.Is/As.
func LoadFile(path string, format Format) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repro: load %s: %w", path, err)
	}
	defer f.Close()
	db, err := load(f, format)
	if err != nil {
		return nil, fmt.Errorf("repro: load %s (format %s): %w", path, format, err)
	}
	return db, nil
}

func load(r io.Reader, format Format) (*Database, error) {
	f, err := format.internal()
	if err != nil {
		return nil, err
	}
	db, err := seq.Parse(r, f)
	if err != nil {
		return nil, err
	}
	return newDatabase(store.FromDB(db, store.Options{})), nil
}

// Add appends a new sequence of event names under the given label (empty
// label auto-names the sequence "S<n>"), sealing the result as the next
// snapshot. To grow an existing sequence instead, use Append.
//
// Add cannot fail on in-memory databases. On a durable database a WAL
// write failure makes Add a no-op and the error is sticky: the next
// Append, Sync, or Close returns it. Code that must observe durability
// errors per batch should use Append.
func (d *Database) Add(label string, events []string) {
	_, _ = d.store().Append([]store.Record{{Label: label, Events: events}}, false)
}

// AddString appends a sequence where each byte of events is one
// single-character event — handy for examples and tests.
func (d *Database) AddString(label, events string) {
	names := make([]string, len(events))
	for i := 0; i < len(events); i++ {
		names[i] = events[i : i+1]
	}
	d.Add(label, names)
}

// Record is one unit of an Append batch: events to ingest under a label.
type Record struct {
	// Label names the sequence. A non-empty label matching an existing
	// sequence appends the events to that sequence (the live-trace case:
	// more events for a known session); otherwise a new sequence is
	// created under the label (empty = auto-named).
	Label string
	// Events are the event names to append, in order.
	Events []string
}

// Append ingests one batch of records atomically and returns the snapshot
// holding the result. Unlike Add, records whose label names an existing
// sequence extend that sequence in place (upsert semantics — the shape of
// live log/trace ingestion). The work is proportional to the batch, not
// the database: already-built indexes are maintained incrementally, and
// in-flight mining runs keep their own snapshot, unaffected.
//
// On a durable database the batch is written to the write-ahead log —
// and, under SyncAlways, fsynced — before this method returns: a nil
// error means the records survive a crash. An error means nothing was
// applied. Errors are impossible on in-memory databases.
func (d *Database) Append(records []Record) (*Snapshot, error) {
	batch := make([]store.Record, len(records))
	for i, r := range records {
		batch[i] = store.Record{Label: r.Label, Events: r.Events}
	}
	snap, err := d.store().Append(batch, true)
	if err != nil {
		if errors.Is(err, store.ErrDegraded) {
			// Re-sentinel into the public taxonomy; the root cause
			// (ENOSPC, EIO, ...) stays reachable through the chain.
			return nil, fmt.Errorf("repro: %w: %w", ErrDegraded, err)
		}
		if errors.Is(err, store.ErrNotPrimary) {
			// A replica: writes belong on the primary. The serving layer
			// maps this to 409 with the upstream's address.
			return nil, fmt.Errorf("repro: %w: %w", ErrNotPrimary, err)
		}
		return nil, err
	}
	return &Snapshot{s: snap}, nil
}

// Snapshot returns the current immutable snapshot of the database. A
// snapshot never changes: queries and mining runs against it observe one
// consistent state regardless of concurrent appends, and its Generation
// identifies that state (e.g. as a cache key). Database's own query and
// mining methods are shorthands for Snapshot().<Method>; grab a Snapshot
// explicitly when a multi-step read must see one consistent generation.
func (d *Database) Snapshot() *Snapshot {
	return &Snapshot{s: d.store().Current()}
}

// NumSequences returns the number of sequences added so far.
func (d *Database) NumSequences() int { return d.Snapshot().NumSequences() }

// NumEvents returns the number of distinct event names seen so far.
func (d *Database) NumEvents() int { return d.Snapshot().NumEvents() }

// Stats returns summary statistics of the database.
func (d *Database) Stats() Stats { return d.Snapshot().Stats() }

// Snapshot is one sealed generation of a Database: an immutable view that
// supports every query and mining operation. All methods are safe for
// concurrent use.
type Snapshot struct {
	s *store.Snapshot
}

// Generation returns the snapshot's generation number: 1 for the freshly
// created (or loaded) database, incremented by every Add/Append batch.
// Equal generations of the same Database mean identical contents.
func (s *Snapshot) Generation() uint64 { return s.s.Generation() }

// NumSequences returns the number of sequences in this generation.
func (s *Snapshot) NumSequences() int { return s.s.NumSequences() }

// NumEvents returns the number of distinct event names in this generation.
func (s *Snapshot) NumEvents() int { return s.s.NumEvents() }

// Warm builds the snapshot's default (FastNext) index eagerly. Purely a
// latency optimization: mining builds indexes lazily and concurrently-safe
// on first use anyway, but a warmed index also lets subsequent appends
// maintain it incrementally instead of paying a fresh lazy build later.
// Services call this once after upload; nothing ever requires it.
func (s *Snapshot) Warm() { s.s.Index(false) }

// Stats returns summary statistics of this generation in O(1): the store
// maintains them incrementally across appends, so stats never rescan the
// database.
func (s *Snapshot) Stats() Stats {
	sum := s.s.Summary()
	return Stats{
		NumSequences:   sum.NumSequences,
		DistinctEvents: sum.DistinctEvents,
		TotalLength:    sum.TotalLength,
		MinLength:      sum.MinLength,
		MaxLength:      sum.MaxLength,
		AvgLength:      sum.AvgLength,
	}
}

// Stats summarizes a database.
type Stats struct {
	NumSequences   int
	DistinctEvents int
	TotalLength    int
	MinLength      int
	MaxLength      int
	AvgLength      float64
}

// Options configures a mining run.
type Options struct {
	// MinSupport is the repetitive-support threshold (>= 1).
	MinSupport int
	// MaxPatternLength bounds pattern length; 0 = unbounded.
	MaxPatternLength int
	// MaxPatterns stops the run after that many patterns (0 = unbounded);
	// Result.Truncated reports whether the cap was hit. The cap is
	// deterministic at every worker count: the returned patterns are
	// exactly the first MaxPatterns of the sequential emission order.
	MaxPatterns int
	// CollectInstances attaches each pattern's leftmost support set.
	CollectInstances bool
	// Workers > 1 fans the mining DFS out over that many goroutines,
	// scheduled by work stealing: idle workers take untaken branches from
	// busy workers' subtrees, so deep skewed search spaces parallelize,
	// not just wide ones. The result — patterns, supports, order, and the
	// first-MaxPatterns prefix under a budget — is identical to the
	// sequential run regardless of worker count or steal timing. More
	// workers than cores, or tiny databases whose whole mine takes
	// microseconds, only add scheduling overhead; see the package
	// documentation for guidance.
	Workers int
	// Ctx, when non-nil, cancels the run: mining polls the context
	// periodically and, once it is done, stops and returns the patterns
	// found so far with Result.Truncated set (no error). Use it to bound
	// interactive queries or abort on client disconnect.
	Ctx context.Context
	// OnPattern, when non-nil, streams every pattern as it is emitted
	// (serialized across workers). Returning false stops the run with
	// Result.Truncated set.
	OnPattern func(Pattern) bool
	// DiscardPatterns suppresses accumulation in Result.Patterns — use with
	// OnPattern when streaming huge results to keep memory flat.
	DiscardPatterns bool
	// DisableFastNext runs this query against the binary-search next()
	// index instead of the O(1) successor tables — the paper's original
	// O(log L) formulation. Output is identical; only the speed/memory
	// trade-off changes. The binary-search index is built lazily on the
	// first such run and cached alongside the fast one.
	DisableFastNext bool
	// Semantics selects the occurrence semantics of the run; the zero
	// value is SemanticsRepetitive, the paper's definition. See the
	// Semantics constants for the modes and their papers.
	Semantics Semantics
	// MinGap and MaxGap bound the number of events strictly between
	// consecutive pattern events under SemanticsGapped
	// (0 <= MinGap <= MaxGap; both 0 mines contiguous substrings).
	// Setting either with any other semantics is an error.
	MinGap, MaxGap int
	// CompressDelta is the support tolerance δ of SemanticsCompressed, in
	// [0, 1): a representative R covers a closed pattern P when P is a
	// subsequence of R and sup(R) >= (1-δ)·sup(P). 0 selects
	// DefaultCompressDelta. Setting it with any other semantics is an
	// error.
	CompressDelta float64
}

// Instance is one occurrence of a pattern: the sequence it lives in and
// the 1-based positions of its events (the landmark).
type Instance struct {
	SequenceIndex int    // 0-based index into the database
	Sequence      string // label of the sequence
	Positions     []int  // 1-based landmark, strictly increasing
}

// Pattern is a mined pattern.
type Pattern struct {
	// Events is the pattern as event names.
	Events []string
	// Support is the pattern's support under the run's semantics. For the
	// default (repetitive) semantics that is the maximum number of
	// pairwise non-overlapping occurrences in the database.
	Support int
	// Instances is the pattern's reported support set (for the default
	// semantics, the leftmost maximum set of non-overlapping occurrences);
	// nil unless Options.CollectInstances was set.
	Instances []Instance
}

// Result is the output of Mine or MineClosed.
type Result struct {
	Patterns []Pattern
	// NumPatterns is the number of patterns emitted; it equals
	// len(Patterns) unless Options.DiscardPatterns was set.
	NumPatterns int
	// Truncated reports that the run stopped early: MaxPatterns was
	// reached, OnPattern returned false, or Options.Ctx was cancelled.
	Truncated bool
	// Elapsed is the wall-clock mining time.
	Elapsed time.Duration
	// WorkersRequested and WorkersEffective report the worker count asked
	// for and the count actually used after clamping to GOMAXPROCS
	// (output is identical either way; the clamp avoids oversubscription
	// overhead). Sequential runs report 1/1.
	WorkersRequested int
	WorkersEffective int
	// TopKFrontierPeak and TopKArenaBytes describe the best-first top-k
	// frontier: its high-water node count and the node-arena bytes
	// backing it (summed across worker shards). Both are 0 for threshold
	// mining, which keeps no frontier.
	TopKFrontierPeak int
	TopKArenaBytes   int64
}

// Mine returns every pattern with repetitive support at least
// opt.MinSupport (the paper's GSgrow), run against the current snapshot.
func (d *Database) Mine(opt Options) (*Result, error) {
	return d.Snapshot().Mine(opt)
}

// MineClosed returns every closed frequent pattern: those with no
// super-pattern of equal support (the paper's CloGSgrow). The closed set
// is typically orders of magnitude smaller than the full frequent set and
// loses no information: every frequent pattern is a sub-pattern of some
// closed pattern with the same support.
func (d *Database) MineClosed(opt Options) (*Result, error) {
	return d.Snapshot().MineClosed(opt)
}

// Mine returns every pattern with repetitive support at least
// opt.MinSupport (the paper's GSgrow) in this generation.
func (s *Snapshot) Mine(opt Options) (*Result, error) {
	return s.mine(opt, false)
}

// MineClosed returns every closed frequent pattern of this generation (the
// paper's CloGSgrow); see Database.MineClosed.
func (s *Snapshot) MineClosed(opt Options) (*Result, error) {
	return s.mine(opt, true)
}

func (s *Snapshot) mine(opt Options, closed bool) (*Result, error) {
	if err := validateSemantics(opt, closed); err != nil {
		return nil, err
	}
	if opt.Semantics == SemanticsGapped {
		return s.mineGapped(opt)
	}
	copt := core.Options{
		MinSupport:       opt.MinSupport,
		Closed:           closed,
		MaxPatternLength: opt.MaxPatternLength,
		MaxPatterns:      opt.MaxPatterns,
		CollectInstances: opt.CollectInstances,
		Ctx:              opt.Ctx,
		DiscardPatterns:  opt.DiscardPatterns,
		Semantics:        coreSemantics(opt.Semantics),
		CompressDelta:    opt.CompressDelta,
	}
	if opt.OnPattern != nil {
		cb := opt.OnPattern
		copt.OnPattern = func(p core.Pattern) bool { return cb(s.exportPattern(p)) }
	}
	ix := s.s.Index(opt.DisableFastNext)
	var res *core.Result
	var err error
	if opt.Workers > 1 {
		res, err = core.MineParallel(ix, copt, opt.Workers)
	} else {
		res, err = core.Mine(ix, copt)
	}
	if err != nil {
		return nil, fmt.Errorf("repro: %w: %v", ErrInvalidOptions, err)
	}
	out := &Result{
		NumPatterns:      res.NumPatterns,
		Truncated:        res.Stats.Truncated,
		Elapsed:          res.Stats.Duration,
		WorkersRequested: res.Stats.WorkersRequested,
		WorkersEffective: res.Stats.WorkersEffective,
	}
	out.Patterns = make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		out.Patterns[i] = s.exportPattern(p)
	}
	return out, nil
}

// mineGapped routes a SemanticsGapped run to the gap-constrained miner
// (internal/gapped), which computes support by per-sequence max flow —
// greedy leftmost growth is not optimal under gap constraints. Closed
// mode, Workers > 1 and CollectInstances were rejected by
// validateSemantics before this point.
func (s *Snapshot) mineGapped(opt Options) (*Result, error) {
	db := s.s.DB()
	gopt := gapped.Options{
		MinSupport:       opt.MinSupport,
		MinGap:           opt.MinGap,
		MaxGap:           opt.MaxGap,
		MaxPatternLength: opt.MaxPatternLength,
		MaxPatterns:      opt.MaxPatterns,
		Ctx:              opt.Ctx,
	}
	if opt.OnPattern != nil {
		cb := opt.OnPattern
		gopt.OnPattern = func(p gapped.Pattern) bool { return cb(exportGappedPattern(db, p)) }
	}
	res, err := gapped.Mine(db, gopt)
	if err != nil {
		return nil, fmt.Errorf("repro: %w: %v", ErrInvalidOptions, err)
	}
	out := &Result{
		NumPatterns:      len(res.Patterns),
		Truncated:        res.Truncated,
		Elapsed:          res.Duration,
		WorkersRequested: 1,
		WorkersEffective: 1,
	}
	if !opt.DiscardPatterns {
		out.Patterns = make([]Pattern, len(res.Patterns))
		for i, p := range res.Patterns {
			out.Patterns[i] = exportGappedPattern(db, p)
		}
	}
	return out, nil
}

func exportGappedPattern(db *seq.DB, p gapped.Pattern) Pattern {
	events := make([]string, len(p.Events))
	for j, e := range p.Events {
		events[j] = db.Dict.Name(e)
	}
	return Pattern{Events: events, Support: p.Support}
}

func (s *Snapshot) exportPattern(p core.Pattern) Pattern {
	events := make([]string, len(p.Events))
	for j, e := range p.Events {
		events[j] = s.s.DB().Dict.Name(e)
	}
	out := Pattern{Events: events, Support: p.Support}
	if p.Instances != nil {
		out.Instances = s.exportInstances(p.Instances)
	}
	return out
}

func (s *Snapshot) exportInstances(set core.FullSet) []Instance {
	out := make([]Instance, len(set))
	for k, ins := range set {
		positions := make([]int, len(ins.Land))
		for j, l := range ins.Land {
			positions[j] = int(l)
		}
		out[k] = Instance{
			SequenceIndex: int(ins.Seq),
			Sequence:      s.s.DB().Label(int(ins.Seq)),
			Positions:     positions,
		}
	}
	return out
}

// MineTopK returns the k highest-support patterns (closed patterns when
// closed is set) without requiring a support threshold, via best-first
// search over the pattern-growth tree. Patterns come back in
// non-increasing support order, ties broken lexicographically. Intended
// for exploration; on dense data prefer Mine with a threshold.
func (d *Database) MineTopK(k int, closed bool) (*Result, error) {
	return d.MineTopKContext(context.Background(), k, closed, 0)
}

// TopKOptions configures MineTopKWith. The zero value matches MineTopK's
// defaults.
type TopKOptions struct {
	// MaxPatternLength bounds pattern length; 0 = unbounded.
	MaxPatternLength int
	// Workers > 1 runs the best-first search over that many goroutines,
	// each expanding a shard of the frontier, coordinated through the
	// current k-th best support so dead shards stop early. The result is
	// byte-identical to the sequential search for any worker count.
	Workers int
	// Ctx, when non-nil, cancels the search: the patterns found so far
	// come back with Result.Truncated set. With Workers <= 1, best-first
	// order guarantees those are still the true highest-support patterns;
	// a cancelled parallel search returns its best candidates so far
	// without that guarantee.
	Ctx context.Context
	// DisableFastNext runs the search against the binary-search next()
	// index, with the same contract as Options.DisableFastNext.
	DisableFastNext bool
	// Semantics selects the occurrence semantics. The best-first top-k
	// search is defined over repetitive support only, so any value other
	// than SemanticsRepetitive is rejected with ErrInvalidOptions; for a
	// small representative pattern set use Mine with SemanticsCompressed
	// and MaxPatterns instead.
	Semantics Semantics
}

// MineTopKContext is MineTopK with cancellation and an optional pattern
// length bound (maxLen 0 = unbounded): when ctx is done, the search stops
// and the patterns found so far come back with Result.Truncated set.
func (d *Database) MineTopKContext(ctx context.Context, k int, closed bool, maxLen int) (*Result, error) {
	return d.MineTopKWith(k, closed, TopKOptions{Ctx: ctx, MaxPatternLength: maxLen})
}

// MineTopKWith is MineTopK with the full set of run-level options the
// top-k search supports.
func (d *Database) MineTopKWith(k int, closed bool, opt TopKOptions) (*Result, error) {
	return d.Snapshot().MineTopKWith(k, closed, opt)
}

// MineTopKWith mines the k highest-support (closed) patterns of this
// generation; see Database.MineTopK.
func (s *Snapshot) MineTopKWith(k int, closed bool, opt TopKOptions) (*Result, error) {
	switch opt.Semantics {
	case SemanticsRepetitive:
	case SemanticsNonOverlapping, SemanticsCompressed, SemanticsGapped:
		return nil, fmt.Errorf("repro: %w: top-k search supports only repetitive semantics (got %s)", ErrInvalidOptions, opt.Semantics)
	default:
		return nil, fmt.Errorf("repro: %w %s", ErrUnknownSemantics, opt.Semantics)
	}
	res, err := core.MineTopKParallel(opt.Ctx, s.s.Index(opt.DisableFastNext), k, closed, opt.MaxPatternLength, opt.Workers)
	if err != nil {
		return nil, fmt.Errorf("repro: %w: %v", ErrInvalidOptions, err)
	}
	out := &Result{
		NumPatterns:      res.NumPatterns,
		Truncated:        res.Stats.Truncated,
		Elapsed:          res.Stats.Duration,
		WorkersRequested: res.Stats.WorkersRequested,
		WorkersEffective: res.Stats.WorkersEffective,
		TopKFrontierPeak: res.Stats.FrontierPeak,
		TopKArenaBytes:   res.Stats.ArenaBytes,
	}
	out.Patterns = make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		out.Patterns[i] = s.exportPattern(p)
	}
	return out, nil
}

// Support computes the repetitive support of one pattern, given as event
// names, in the current snapshot. Unknown event names yield support 0.
func (d *Database) Support(pattern []string) int {
	return d.Snapshot().Support(pattern)
}

// Support computes the repetitive support of one pattern in this
// generation. Unknown event names yield support 0.
func (s *Snapshot) Support(pattern []string) int {
	return core.SupportOfNames(s.s.Index(false), pattern)
}

// SupportSet computes a maximum set of non-overlapping occurrences of
// pattern (the leftmost support set) in the current snapshot. Unknown
// event names yield an empty set.
func (d *Database) SupportSet(pattern []string) []Instance {
	return d.Snapshot().SupportSet(pattern)
}

// SupportSet computes a maximum set of non-overlapping occurrences of
// pattern (the leftmost support set) in this generation.
func (s *Snapshot) SupportSet(pattern []string) []Instance {
	db := s.s.DB()
	ids := make([]seq.EventID, len(pattern))
	for i, n := range pattern {
		id := db.Dict.Lookup(n)
		if id == seq.NoEvent {
			return nil
		}
		ids[i] = id
	}
	return s.exportInstances(core.ComputeSupportSet(s.s.Index(false), ids))
}

// PerSequenceSupport returns, for each sequence, the number of
// non-overlapping occurrences of pattern inside it — the feature values
// the paper proposes for sequence classification (Section V). The slice is
// indexed by sequence index; its sum equals Support(pattern).
func (d *Database) PerSequenceSupport(pattern []string) []int {
	return d.Snapshot().PerSequenceSupport(pattern)
}

// PerSequenceSupport is Database.PerSequenceSupport against this
// generation.
func (s *Snapshot) PerSequenceSupport(pattern []string) []int {
	out := make([]int, s.s.NumSequences())
	for _, ins := range s.SupportSet(pattern) {
		out[ins.SequenceIndex]++
	}
	return out
}

package repro

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/seq"
)

// Format identifies an on-disk database encoding accepted by Load.
type Format int

// Supported formats. See internal/seq for the grammar of each.
const (
	// Tokens: one sequence per line, whitespace-separated event names,
	// optional "label:" prefix, '#' comments.
	Tokens Format = iota
	// Chars: one sequence per line, each byte a single-character event.
	Chars
	// SPMF: the SPMF sequence format (integer items, -1/-2 separators)
	// restricted to single-item itemsets.
	SPMF
)

// String returns the CLI/wire name of the format.
func (f Format) String() string {
	switch f {
	case Tokens:
		return "tokens"
	case Chars:
		return "chars"
	case SPMF:
		return "spmf"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

func (f Format) internal() (seq.Format, error) {
	switch f {
	case Tokens:
		return seq.FormatTokens, nil
	case Chars:
		return seq.FormatChars, nil
	case SPMF:
		return seq.FormatSPMF, nil
	default:
		return 0, fmt.Errorf("repro: unknown format %d", f)
	}
}

// Database is a sequence database under construction and the handle on
// which mining runs. Not safe for concurrent mutation; concurrent mining
// of an unchanging database is safe.
//
// Mining uses a FastNext index by default: per-sequence successor tables
// that answer the paper's next(S, e, lowest) primitive in O(1) instead of
// O(log L), built lazily under a memory budget (sequences whose table
// would not fit fall back to binary search individually). Runs with
// Options.DisableFastNext use a separate binary-search-only index, built
// lazily on first such run.
type Database struct {
	db *seq.DB

	// ixMu guards lazy index construction, so concurrent mining requests
	// (including a mix of fast and DisableFastNext runs) are safe even
	// when an index is still cold. Sequence mutations remain unguarded:
	// Add/Load must not race with anything.
	ixMu   sync.Mutex
	ix     *seq.Index // FastNext index (default for mining)
	ixSlow *seq.Index // binary-search-only index (DisableFastNext runs)
	dirty  bool
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{db: seq.NewDB(), dirty: true}
}

// Load reads a database from r in the given format. Errors are wrapped
// with the format name and leave the underlying cause (e.g. a
// seq.ParseError with line information) reachable through errors.As.
func Load(r io.Reader, format Format) (*Database, error) {
	db, err := load(r, format)
	if err != nil {
		return nil, fmt.Errorf("repro: load (format %s): %w", format, err)
	}
	return db, nil
}

// LoadFile reads a database from the named file. Errors are wrapped with
// the path and format so that callers juggling many inputs can tell which
// one failed; the underlying cause (os.ErrNotExist, parse errors with line
// numbers) stays reachable through errors.Is/As.
func LoadFile(path string, format Format) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repro: load %s: %w", path, err)
	}
	defer f.Close()
	db, err := load(f, format)
	if err != nil {
		return nil, fmt.Errorf("repro: load %s (format %s): %w", path, format, err)
	}
	return db, nil
}

func load(r io.Reader, format Format) (*Database, error) {
	f, err := format.internal()
	if err != nil {
		return nil, err
	}
	db, err := seq.Parse(r, f)
	if err != nil {
		return nil, err
	}
	return &Database{db: db, dirty: true}, nil
}

// Add appends a sequence of event names under the given label (empty label
// auto-names the sequence "S<n>").
func (d *Database) Add(label string, events []string) {
	d.db.Add(label, events)
	d.dirty = true
}

// AddString appends a sequence where each byte of events is one
// single-character event — handy for examples and tests.
func (d *Database) AddString(label, events string) {
	d.db.AddChars(label, events)
	d.dirty = true
}

// NumSequences returns the number of sequences added so far.
func (d *Database) NumSequences() int { return d.db.NumSequences() }

// NumEvents returns the number of distinct event names seen so far.
func (d *Database) NumEvents() int { return d.db.NumEvents() }

// Stats returns summary statistics of the database.
func (d *Database) Stats() Stats {
	st := seq.ComputeStats(d.db)
	return Stats{
		NumSequences:   st.NumSequences,
		DistinctEvents: st.DistinctEvents,
		TotalLength:    st.TotalLength,
		MinLength:      st.MinLength,
		MaxLength:      st.MaxLength,
		AvgLength:      st.AvgLength,
	}
}

// Stats summarizes a database.
type Stats struct {
	NumSequences   int
	DistinctEvents int
	TotalLength    int
	MinLength      int
	MaxLength      int
	AvgLength      float64
}

func (d *Database) index() *seq.Index { return d.indexFor(false) }

func (d *Database) indexFor(disableFastNext bool) *seq.Index {
	d.ixMu.Lock()
	defer d.ixMu.Unlock()
	if d.dirty {
		d.ix, d.ixSlow = nil, nil
		d.dirty = false
	}
	if disableFastNext {
		if d.ixSlow == nil {
			d.ixSlow = seq.NewIndex(d.db)
		}
		return d.ixSlow
	}
	if d.ix == nil {
		d.ix = seq.NewIndexWith(d.db, seq.IndexOptions{FastNext: true})
	}
	return d.ix
}

// Prepare builds the internal inverted index (including the FastNext
// successor tables) eagerly. Mining builds it lazily on first use, which —
// like Add — is a mutation: call Prepare once after the last Add/Load
// before handing the database to concurrent miners, so that the
// "concurrent mining of an unchanging database is safe" guarantee holds
// from the first request.
func (d *Database) Prepare() { d.index() }

// Options configures a mining run.
type Options struct {
	// MinSupport is the repetitive-support threshold (>= 1).
	MinSupport int
	// MaxPatternLength bounds pattern length; 0 = unbounded.
	MaxPatternLength int
	// MaxPatterns stops the run after that many patterns (0 = unbounded);
	// Result.Truncated reports whether the cap was hit.
	MaxPatterns int
	// CollectInstances attaches each pattern's leftmost support set.
	CollectInstances bool
	// Workers > 1 fans the mining DFS out over that many goroutines
	// (seed-event parallelism). The result is identical to the sequential
	// run; under MaxPatterns, exactly that many patterns are returned but
	// which ones depends on scheduling.
	Workers int
	// Ctx, when non-nil, cancels the run: mining polls the context
	// periodically and, once it is done, stops and returns the patterns
	// found so far with Result.Truncated set (no error). Use it to bound
	// interactive queries or abort on client disconnect.
	Ctx context.Context
	// OnPattern, when non-nil, streams every pattern as it is emitted
	// (serialized across workers). Returning false stops the run with
	// Result.Truncated set.
	OnPattern func(Pattern) bool
	// DiscardPatterns suppresses accumulation in Result.Patterns — use with
	// OnPattern when streaming huge results to keep memory flat.
	DiscardPatterns bool
	// DisableFastNext runs this query against the binary-search next()
	// index instead of the O(1) successor tables — the paper's original
	// O(log L) formulation. Output is identical; only the speed/memory
	// trade-off changes. The binary-search index is built lazily on the
	// first such run and cached alongside the fast one.
	DisableFastNext bool
}

// Instance is one occurrence of a pattern: the sequence it lives in and
// the 1-based positions of its events (the landmark).
type Instance struct {
	SequenceIndex int    // 0-based index into the database
	Sequence      string // label of the sequence
	Positions     []int  // 1-based landmark, strictly increasing
}

// Pattern is a mined pattern.
type Pattern struct {
	// Events is the pattern as event names.
	Events []string
	// Support is its repetitive support: the maximum number of pairwise
	// non-overlapping occurrences in the database.
	Support int
	// Instances is a maximum set of non-overlapping occurrences (the
	// leftmost support set); nil unless Options.CollectInstances was set.
	Instances []Instance
}

// Result is the output of Mine or MineClosed.
type Result struct {
	Patterns []Pattern
	// NumPatterns is the number of patterns emitted; it equals
	// len(Patterns) unless Options.DiscardPatterns was set.
	NumPatterns int
	// Truncated reports that the run stopped early: MaxPatterns was
	// reached, OnPattern returned false, or Options.Ctx was cancelled.
	Truncated bool
	// Elapsed is the wall-clock mining time.
	Elapsed time.Duration
}

// Mine returns every pattern with repetitive support at least
// opt.MinSupport (the paper's GSgrow).
func (d *Database) Mine(opt Options) (*Result, error) {
	return d.mine(opt, false)
}

// MineClosed returns every closed frequent pattern: those with no
// super-pattern of equal support (the paper's CloGSgrow). The closed set
// is typically orders of magnitude smaller than the full frequent set and
// loses no information: every frequent pattern is a sub-pattern of some
// closed pattern with the same support.
func (d *Database) MineClosed(opt Options) (*Result, error) {
	return d.mine(opt, true)
}

func (d *Database) mine(opt Options, closed bool) (*Result, error) {
	copt := core.Options{
		MinSupport:       opt.MinSupport,
		Closed:           closed,
		MaxPatternLength: opt.MaxPatternLength,
		MaxPatterns:      opt.MaxPatterns,
		CollectInstances: opt.CollectInstances,
		Ctx:              opt.Ctx,
		DiscardPatterns:  opt.DiscardPatterns,
	}
	if opt.OnPattern != nil {
		cb := opt.OnPattern
		copt.OnPattern = func(p core.Pattern) bool { return cb(d.exportPattern(p)) }
	}
	ix := d.indexFor(opt.DisableFastNext)
	var res *core.Result
	var err error
	if opt.Workers > 1 {
		res, err = core.MineParallel(ix, copt, opt.Workers)
	} else {
		res, err = core.Mine(ix, copt)
	}
	if err != nil {
		return nil, err
	}
	out := &Result{
		NumPatterns: res.NumPatterns,
		Truncated:   res.Stats.Truncated,
		Elapsed:     res.Stats.Duration,
	}
	out.Patterns = make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		out.Patterns[i] = d.exportPattern(p)
	}
	return out, nil
}

func (d *Database) exportPattern(p core.Pattern) Pattern {
	events := make([]string, len(p.Events))
	for j, e := range p.Events {
		events[j] = d.db.Dict.Name(e)
	}
	out := Pattern{Events: events, Support: p.Support}
	if p.Instances != nil {
		out.Instances = d.exportInstances(p.Instances)
	}
	return out
}

func (d *Database) exportInstances(set core.FullSet) []Instance {
	out := make([]Instance, len(set))
	for k, ins := range set {
		positions := make([]int, len(ins.Land))
		for j, l := range ins.Land {
			positions[j] = int(l)
		}
		out[k] = Instance{
			SequenceIndex: int(ins.Seq),
			Sequence:      d.db.Label(int(ins.Seq)),
			Positions:     positions,
		}
	}
	return out
}

// MineTopK returns the k highest-support patterns (closed patterns when
// closed is set) without requiring a support threshold, via best-first
// search over the pattern-growth tree. Patterns come back in
// non-increasing support order, ties broken lexicographically. Intended
// for exploration; on dense data prefer Mine with a threshold.
func (d *Database) MineTopK(k int, closed bool) (*Result, error) {
	return d.MineTopKContext(context.Background(), k, closed, 0)
}

// TopKOptions configures MineTopKWith. The zero value matches MineTopK's
// defaults.
type TopKOptions struct {
	// MaxPatternLength bounds pattern length; 0 = unbounded.
	MaxPatternLength int
	// Ctx, when non-nil, cancels the search: the patterns found so far
	// come back with Result.Truncated set. Best-first order guarantees
	// those are still the true highest-support patterns.
	Ctx context.Context
	// DisableFastNext runs the search against the binary-search next()
	// index, with the same contract as Options.DisableFastNext.
	DisableFastNext bool
}

// MineTopKContext is MineTopK with cancellation and an optional pattern
// length bound (maxLen 0 = unbounded): when ctx is done, the search stops
// and the patterns found so far come back with Result.Truncated set.
func (d *Database) MineTopKContext(ctx context.Context, k int, closed bool, maxLen int) (*Result, error) {
	return d.MineTopKWith(k, closed, TopKOptions{Ctx: ctx, MaxPatternLength: maxLen})
}

// MineTopKWith is MineTopK with the full set of run-level options the
// top-k search supports.
func (d *Database) MineTopKWith(k int, closed bool, opt TopKOptions) (*Result, error) {
	res, err := core.MineTopKCtx(opt.Ctx, d.indexFor(opt.DisableFastNext), k, closed, opt.MaxPatternLength)
	if err != nil {
		return nil, err
	}
	out := &Result{
		NumPatterns: res.NumPatterns,
		Truncated:   res.Stats.Truncated,
		Elapsed:     res.Stats.Duration,
	}
	out.Patterns = make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		out.Patterns[i] = d.exportPattern(p)
	}
	return out, nil
}

// Support computes the repetitive support of one pattern, given as event
// names. Unknown event names yield support 0.
func (d *Database) Support(pattern []string) int {
	return core.SupportOfNames(d.index(), pattern)
}

// SupportSet computes a maximum set of non-overlapping occurrences of
// pattern (the leftmost support set). Unknown event names yield an empty
// set.
func (d *Database) SupportSet(pattern []string) []Instance {
	ids := make([]seq.EventID, len(pattern))
	for i, n := range pattern {
		id := d.db.Dict.Lookup(n)
		if id == seq.NoEvent {
			return nil
		}
		ids[i] = id
	}
	return d.exportInstances(core.ComputeSupportSet(d.index(), ids))
}

// PerSequenceSupport returns, for each sequence, the number of
// non-overlapping occurrences of pattern inside it — the feature values
// the paper proposes for sequence classification (Section V). The slice is
// indexed by sequence index; its sum equals Support(pattern).
func (d *Database) PerSequenceSupport(pattern []string) []int {
	out := make([]int, d.db.NumSequences())
	for _, ins := range d.SupportSet(pattern) {
		out[ins.SequenceIndex]++
	}
	return out
}

package repro

import (
	"repro/internal/gapped"
	"repro/internal/seq"
)

// GapOptions configures gap-constrained mining via the deprecated
// MineGapConstrained entry point.
//
// Deprecated: gap constraints are options on the unified mining surface —
// set Options.Semantics to SemanticsGapped and use Options.MinGap/MaxGap
// with Mine. This type remains for compatibility.
type GapOptions struct {
	// MinSupport is the support threshold (>= 1).
	MinSupport int
	// MinGap and MaxGap bound the number of events strictly between
	// consecutive pattern events (0 <= MinGap <= MaxGap). MaxGap = 0 with
	// MinGap = 0 mines contiguous substrings.
	MinGap, MaxGap int
	// MaxPatternLength bounds pattern length; 0 = unbounded.
	MaxPatternLength int
	// MaxPatterns stops the run early; 0 = unbounded.
	MaxPatterns int
}

// MineGapConstrained returns every pattern whose gap-constrained
// repetitive support (maximum number of non-overlapping instances whose
// consecutive gaps all lie in [MinGap, MaxGap]) reaches opt.MinSupport.
//
// Gap-constrained support is NOT monotone under arbitrary sub-patterns
// (deleting a middle event merges two gaps), so unlike Mine/MineClosed the
// result set is not closed under sub-patterns; it is closed under
// prefixes.
//
// Deprecated: Use Mine with Options.Semantics set to SemanticsGapped,
// which accepts the same gap bounds plus the rest of the unified option
// surface (Ctx, OnPattern, DiscardPatterns). This wrapper forwards there
// and returns identical patterns.
func (d *Database) MineGapConstrained(opt GapOptions) (*Result, error) {
	return d.Mine(Options{
		Semantics:        SemanticsGapped,
		MinSupport:       opt.MinSupport,
		MinGap:           opt.MinGap,
		MaxGap:           opt.MaxGap,
		MaxPatternLength: opt.MaxPatternLength,
		MaxPatterns:      opt.MaxPatterns,
	})
}

// SupportWithGaps computes the gap-constrained repetitive support of one
// pattern. Unknown event names yield support 0.
func (d *Database) SupportWithGaps(pattern []string, minGap, maxGap int) (int, error) {
	db := d.Snapshot().s.DB()
	ids := make([]seq.EventID, len(pattern))
	for i, n := range pattern {
		id := db.Dict.Lookup(n)
		if id == seq.NoEvent {
			return 0, nil
		}
		ids[i] = id
	}
	return gapped.Support(db, ids, minGap, maxGap)
}

package repro

import (
	"repro/internal/gapped"
	"repro/internal/seq"
)

// GapOptions configures gap-constrained mining (the paper's Section V
// future-work extension, implemented exactly — see internal/gapped for the
// algorithmic notes on why this variant computes support by max flow
// instead of greedy instance growth).
type GapOptions struct {
	// MinSupport is the support threshold (>= 1).
	MinSupport int
	// MinGap and MaxGap bound the number of events strictly between
	// consecutive pattern events (0 <= MinGap <= MaxGap). MaxGap = 0 with
	// MinGap = 0 mines contiguous substrings.
	MinGap, MaxGap int
	// MaxPatternLength bounds pattern length; 0 = unbounded.
	MaxPatternLength int
	// MaxPatterns stops the run early; 0 = unbounded.
	MaxPatterns int
}

// MineGapConstrained returns every pattern whose gap-constrained
// repetitive support (maximum number of non-overlapping instances whose
// consecutive gaps all lie in [MinGap, MaxGap]) reaches opt.MinSupport.
//
// Gap-constrained support is NOT monotone under arbitrary sub-patterns
// (deleting a middle event merges two gaps), so unlike Mine/MineClosed the
// result set is not closed under sub-patterns; it is closed under
// prefixes.
func (d *Database) MineGapConstrained(opt GapOptions) (*Result, error) {
	db := d.Snapshot().s.DB()
	res, err := gapped.Mine(db, gapped.Options{
		MinSupport:       opt.MinSupport,
		MinGap:           opt.MinGap,
		MaxGap:           opt.MaxGap,
		MaxPatternLength: opt.MaxPatternLength,
		MaxPatterns:      opt.MaxPatterns,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Truncated: res.Truncated, Elapsed: res.Duration}
	out.Patterns = make([]Pattern, len(res.Patterns))
	for i, p := range res.Patterns {
		events := make([]string, len(p.Events))
		for j, e := range p.Events {
			events[j] = db.Dict.Name(e)
		}
		out.Patterns[i] = Pattern{Events: events, Support: p.Support}
	}
	return out, nil
}

// SupportWithGaps computes the gap-constrained repetitive support of one
// pattern. Unknown event names yield support 0.
func (d *Database) SupportWithGaps(pattern []string, minGap, maxGap int) (int, error) {
	db := d.Snapshot().s.DB()
	ids := make([]seq.EventID, len(pattern))
	for i, n := range pattern {
		id := db.Dict.Lookup(n)
		if id == seq.NoEvent {
			return 0, nil
		}
		ids[i] = id
	}
	return gapped.Support(db, ids, minGap, maxGap)
}

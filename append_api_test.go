package repro

import (
	"sync"
	"testing"
)

// TestAppendSnapshotAPI covers the public snapshot lifecycle: Append
// upserts by label, snapshots are immutable and generation-tagged, and
// Database methods always answer from the current generation.
func TestAppendSnapshotAPI(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABAB")
	db.AddString("S2", "BA")

	before := db.Snapshot()
	if before.Generation() != 3 { // 1 empty + 2 adds
		t.Fatalf("generation = %d, want 3", before.Generation())
	}
	if got := before.Support([]string{"A", "B"}); got != 2 {
		t.Fatalf("sup(AB) = %d, want 2", got)
	}

	after, err := db.Append([]Record{
		{Label: "S1", Events: []string{"A", "B"}}, // extends S1
		{Label: "S3", Events: []string{"A", "B"}}, // new labeled sequence
		{Events: []string{"B", "B"}},              // new auto-named sequence
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation() != before.Generation()+1 {
		t.Fatalf("append bumped generation to %d from %d", after.Generation(), before.Generation())
	}
	if after.NumSequences() != 4 || before.NumSequences() != 2 {
		t.Fatalf("sequences: after=%d before=%d, want 4 and 2", after.NumSequences(), before.NumSequences())
	}
	if got := after.Support([]string{"A", "B"}); got != 4 {
		t.Fatalf("sup(AB) after append = %d, want 4", got)
	}
	// The sealed snapshot still answers from its own generation.
	if got := before.Support([]string{"A", "B"}); got != 2 {
		t.Fatalf("sealed snapshot sup(AB) = %d, want 2", got)
	}
	// Database-level queries follow the current snapshot.
	if got := db.Support([]string{"A", "B"}); got != 4 {
		t.Fatalf("db sup(AB) = %d, want 4", got)
	}

	res, err := after.MineClosed(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	resDB, err := db.MineClosed(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPatterns != resDB.NumPatterns {
		t.Fatalf("snapshot mine found %d patterns, database mine %d", res.NumPatterns, resDB.NumPatterns)
	}
}

// TestMineWhileAppend exercises the public API's central promise: mining
// needs no preparation or coordination with appends. Run under -race.
func TestMineWhileAppend(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCABC")

	var wg sync.WaitGroup
	const rounds = 25
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := db.Append([]Record{{Label: "S1", Events: []string{"C", "A"}}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			snap := db.Snapshot()
			res, err := snap.Mine(Options{MinSupport: 2, MaxPatternLength: 3})
			if err != nil {
				t.Error(err)
				return
			}
			// Re-mining the same snapshot must reproduce the result exactly.
			res2, err := snap.Mine(Options{MinSupport: 2, MaxPatternLength: 3})
			if err != nil {
				t.Error(err)
				return
			}
			if res.NumPatterns != res2.NumPatterns {
				t.Errorf("generation %d: %d then %d patterns", snap.Generation(), res.NumPatterns, res2.NumPatterns)
				return
			}
		}
	}()
	wg.Wait()
}

package repro

import "errors"

// Sentinel errors of the public API. Every error returned by this package
// that stems from one of these conditions wraps the matching sentinel, so
// callers branch with errors.Is instead of matching message text; the
// mining service maps them to HTTP statuses in exactly one place this way.
// The message of a wrapped error still carries the specifics (which
// option, which value).
var (
	// ErrInvalidOptions marks a structurally valid request whose option
	// values or combination are unusable (negative thresholds, gap bounds
	// without gapped semantics, closed mining under a semantics that does
	// not define closure, ...).
	ErrInvalidOptions = errors.New("invalid options")
	// ErrUnknownSemantics marks a semantics name or enum value outside
	// the supported set; see ParseSemantics.
	ErrUnknownSemantics = errors.New("unknown semantics")
	// ErrUnknownFormat marks a database format name or Format value
	// outside the supported set.
	ErrUnknownFormat = errors.New("unknown format")
	// ErrUnknownDatabase marks a reference to a database name the service
	// does not hold. The library itself never returns it; it is the
	// lookup-failure sentinel of the serving layer.
	ErrUnknownDatabase = errors.New("unknown database")
	// ErrStorage marks a durable-storage failure (WAL, segment, or
	// filesystem); the underlying cause stays reachable through
	// errors.Is/As.
	ErrStorage = errors.New("storage failure")
	// ErrDegraded marks an append rejected because the durable database
	// is in read-only degraded mode after an I/O failure (ENOSPC, EIO,
	// ...): mining keeps serving the last snapshot, a background prober
	// retries recovery, and the root cause stays reachable through
	// errors.Is/As. The serving layer maps it to 503 + Retry-After.
	ErrDegraded = errors.New("database degraded (read-only)")
	// ErrNotPrimary marks an append rejected because the database is a
	// read-only replica tailing an upstream primary (see OpenReplica).
	// Writes belong on the primary; the serving layer maps this to 409
	// with the primary's address.
	ErrNotPrimary = errors.New("not primary (read-only replica)")
)

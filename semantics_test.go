package repro

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseSemanticsRoundTrip(t *testing.T) {
	for _, s := range []Semantics{SemanticsRepetitive, SemanticsNonOverlapping, SemanticsCompressed, SemanticsGapped} {
		got, err := ParseSemantics(s.String())
		if err != nil {
			t.Errorf("ParseSemantics(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("ParseSemantics(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if got, err := ParseSemantics(""); err != nil || got != SemanticsRepetitive {
		t.Errorf("ParseSemantics(\"\") = %v, %v; want repetitive", got, err)
	}
	if _, err := ParseSemantics("bogus"); !errors.Is(err, ErrUnknownSemantics) {
		t.Errorf("ParseSemantics(\"bogus\") error = %v, want ErrUnknownSemantics", err)
	}
}

// TestErrorTaxonomy: every public entry point wraps its failures with the
// matching sentinel, so callers can branch with errors.Is instead of
// string matching.
func TestErrorTaxonomy(t *testing.T) {
	db := NewDatabase()
	db.AddString("", "ABAB")

	if _, err := db.Mine(Options{MinSupport: 1, Semantics: Semantics(99)}); !errors.Is(err, ErrUnknownSemantics) {
		t.Errorf("unknown semantics enum: %v, want ErrUnknownSemantics", err)
	}
	invalid := []Options{
		{MinSupport: 0},
		{MinSupport: 1, MinGap: 1},          // gap bounds without gapped
		{MinSupport: 1, CompressDelta: 0.2}, // delta without compressed
		{MinSupport: 1, Semantics: SemanticsCompressed, CompressDelta: 1.5}, // delta out of range
		{MinSupport: 1, Semantics: SemanticsGapped, Workers: 4},             // gapped is sequential
		{MinSupport: 1, Semantics: SemanticsGapped, CollectInstances: true}, // gapped has no instance sets
		{MinSupport: 1, Semantics: SemanticsGapped, MinGap: 3, MaxGap: 1},   // inverted gap range
	}
	for i, opt := range invalid {
		if _, err := db.Mine(opt); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("invalid options case %d: %v, want ErrInvalidOptions", i, err)
		}
	}
	for _, closedSem := range []Semantics{SemanticsNonOverlapping, SemanticsGapped} {
		if _, err := db.MineClosed(Options{MinSupport: 1, Semantics: closedSem}); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("closed × %s accepted", closedSem)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); !errors.Is(err, ErrInvalidOptions) {
		t.Error("ParseSyncPolicy: want ErrInvalidOptions")
	}
	if _, err := Load(nil, Format(99)); !errors.Is(err, ErrUnknownFormat) {
		t.Error("Load with bad format: want ErrUnknownFormat")
	}
	if _, err := Open(string([]byte{0}), OpenOptions{}); !errors.Is(err, ErrStorage) {
		t.Error("Open on impossible dir: want ErrStorage")
	}
}

// TestGapWrapperParity: the deprecated MineGapConstrained wrapper and the
// unified Options.Semantics surface return identical results on the
// shipped fixtures.
func TestGapWrapperParity(t *testing.T) {
	fixtures := map[string]Format{
		"testdata/example11.chars": Chars,
		"testdata/traces.tokens":   Tokens,
	}
	for path, format := range fixtures {
		db, err := LoadFile(path, format)
		if err != nil {
			t.Fatal(err)
		}
		for _, gaps := range []struct{ min, max int }{{0, 0}, {0, 2}, {1, 3}} {
			old, err := db.MineGapConstrained(GapOptions{MinSupport: 2, MinGap: gaps.min, MaxGap: gaps.max})
			if err != nil {
				t.Fatal(err)
			}
			unified, err := db.Mine(Options{
				MinSupport: 2, Semantics: SemanticsGapped, MinGap: gaps.min, MaxGap: gaps.max,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(old.Patterns, unified.Patterns) {
				t.Errorf("%s gaps [%d,%d]: wrapper and unified surface disagree", path, gaps.min, gaps.max)
			}
			if old.NumPatterns != unified.NumPatterns || old.Truncated != unified.Truncated {
				t.Errorf("%s gaps [%d,%d]: result metadata disagrees", path, gaps.min, gaps.max)
			}
		}
	}
}

// TestPublicNonOverlapSemantics: the disjoint-window mode through the
// public API, pinned on the hand-checked AABB case where repetitive and
// nonoverlap supports differ.
func TestPublicNonOverlapSemantics(t *testing.T) {
	db := NewDatabase()
	db.AddString("", "AABB")
	if got := db.Support([]string{"A", "B"}); got != 2 {
		t.Fatalf("repetitive support = %d, want 2", got)
	}
	res, err := db.Mine(Options{MinSupport: 1, Semantics: SemanticsNonOverlapping, CollectInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if len(p.Events) == 2 && p.Events[0] == "A" && p.Events[1] == "B" {
			if p.Support != 1 {
				t.Errorf("nonoverlap sup(AB) = %d, want 1", p.Support)
			}
			if len(p.Instances) != 1 {
				t.Errorf("nonoverlap instances = %v, want one disjoint window", p.Instances)
			}
			return
		}
	}
	t.Error("pattern AB not mined under nonoverlap semantics")
}

// TestPublicCompressedSemantics: the representative mode through the
// public API returns a subset of the closed set covering it.
func TestPublicCompressedSemantics(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCABCABC")
	db.AddString("S2", "ABAB")
	closed, err := db.MineClosed(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	closedSup := map[string]int{}
	for _, p := range closed.Patterns {
		closedSup[patternKey(p.Events)] = p.Support
	}
	res, err := db.Mine(Options{MinSupport: 2, Semantics: SemanticsCompressed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 || len(res.Patterns) > len(closed.Patterns) {
		t.Fatalf("got %d representatives for %d closed patterns", len(res.Patterns), len(closed.Patterns))
	}
	for _, p := range res.Patterns {
		sup, ok := closedSup[patternKey(p.Events)]
		if !ok || sup != p.Support {
			t.Errorf("representative %v (sup %d) is not a closed pattern with that support", p.Events, p.Support)
		}
	}
	// A tight cap is honored and reported.
	capped, err := db.Mine(Options{MinSupport: 2, Semantics: SemanticsCompressed, MaxPatterns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Patterns) != 1 {
		t.Errorf("MaxPatterns=1 returned %d representatives", len(capped.Patterns))
	}
	if len(res.Patterns) > 1 && !capped.Truncated {
		t.Error("capped compressed run not marked truncated")
	}
}

func patternKey(events []string) string {
	key := ""
	for _, e := range events {
		key += e + "\x00"
	}
	return key
}

// TestTopKSemanticsRejection: the best-first search takes only repetitive
// semantics.
func TestTopKSemanticsRejection(t *testing.T) {
	db := NewDatabase()
	db.AddString("", "ABAB")
	if _, err := db.MineTopKWith(2, false, TopKOptions{}); err != nil {
		t.Fatalf("default top-k: %v", err)
	}
	for _, s := range []Semantics{SemanticsNonOverlapping, SemanticsCompressed, SemanticsGapped} {
		if _, err := db.MineTopKWith(2, false, TopKOptions{Semantics: s}); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("top-k × %s: %v, want ErrInvalidOptions", s, err)
		}
	}
	if _, err := db.MineTopKWith(2, false, TopKOptions{Semantics: Semantics(42)}); !errors.Is(err, ErrUnknownSemantics) {
		t.Error("top-k with unknown semantics: want ErrUnknownSemantics")
	}
}

// TestSemanticsParallelAgreement: each kernel-backed mode returns the
// same patterns at Workers 1 and 4 through the public API.
func TestSemanticsParallelAgreement(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCABCABCABC")
	db.AddString("S2", "BCABCA")
	for _, sem := range []Semantics{SemanticsRepetitive, SemanticsNonOverlapping, SemanticsCompressed} {
		seqRes, err := db.Mine(Options{MinSupport: 2, Semantics: sem})
		if err != nil {
			t.Fatal(err)
		}
		parRes, err := db.Mine(Options{MinSupport: 2, Semantics: sem, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqRes.Patterns, parRes.Patterns) {
			t.Errorf("%s: parallel run diverges from sequential", sem)
		}
	}
}

package repro

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded results). Each figure gets one bench per algorithm per
// X-position, named so `go test -bench 'Fig2'` reproduces one figure.
// Dataset sizes are scaled for laptop runs; `cmd/experiments -scale full`
// reproduces the paper-scale sweeps. Ablation benches A1-A4 quantify the
// design choices DESIGN.md calls out.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gapped"
	"repro/internal/harness"
	"repro/internal/postprocess"
	"repro/internal/seq"
)

// Datasets are generated once and cached; generation cost must not pollute
// mining benches.
var benchCache struct {
	sync.Mutex
	dbs map[string]*seq.DB
	ixs map[string]*seq.Index
}

func benchDB(b *testing.B, name string, gen func() (*seq.DB, error)) (*seq.DB, *seq.Index) {
	b.Helper()
	benchCache.Lock()
	defer benchCache.Unlock()
	if benchCache.dbs == nil {
		benchCache.dbs = map[string]*seq.DB{}
		benchCache.ixs = map[string]*seq.Index{}
	}
	if db, ok := benchCache.dbs[name]; ok {
		return db, benchCache.ixs[name]
	}
	db, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	ix := seq.NewIndexWith(db, seq.IndexOptions{FastNext: true})
	benchCache.dbs[name] = db
	benchCache.ixs[name] = ix
	return db, ix
}

func questScaled(b *testing.B) (*seq.DB, *seq.Index) {
	return benchDB(b, "quest", func() (*seq.DB, error) {
		return datagen.Quest(datagen.QuestParams{D: 1, C: 20, N: 1, S: 20, Seed: 1})
	})
}

func gazelleScaled(b *testing.B) (*seq.DB, *seq.Index) {
	return benchDB(b, "gazelle", func() (*seq.DB, error) {
		return datagen.Gazelle(datagen.GazelleParams{NumSequences: 5000, Seed: 1})
	})
}

func tcasFull(b *testing.B) (*seq.DB, *seq.Index) {
	return benchDB(b, "tcas", func() (*seq.DB, error) {
		return datagen.TCAS(datagen.TCASParams{Seed: 3})
	})
}

func mineBench(b *testing.B, ix *seq.Index, opt core.Options) {
	b.Helper()
	b.ReportAllocs()
	var patterns int
	for i := 0; i < b.N; i++ {
		res, err := core.Mine(ix, opt)
		if err != nil {
			b.Fatal(err)
		}
		patterns = res.NumPatterns
	}
	b.ReportMetric(float64(patterns), "patterns")
}

// --- Table I / Example 1.1: support semantics (T1) ---

func BenchmarkTable1Semantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if res.LargeRepetitiveAB != 300 {
			b.Fatalf("semantics drifted: %d", res.LargeRepetitiveAB)
		}
	}
}

// --- Figure 2: min_sup sweep on the Quest dataset (scaled D1C20N1S20) ---

func BenchmarkFig2(b *testing.B) {
	_, ix := questScaled(b)
	for _, ms := range []int{20, 15, 10, 8, 6} {
		b.Run(fmt.Sprintf("All/minsup=%d", ms), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: ms, DiscardPatterns: true})
		})
		b.Run(fmt.Sprintf("Closed/minsup=%d", ms), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: ms, Closed: true, DiscardPatterns: true})
		})
	}
}

// --- Parallel scaling: the Fig2 workload's hardest point (minsup=6) under
// the work-stealing scheduler at 1..8 workers. workers=1 goes through the
// sequential fast path, so the 1-worker line doubles as the scheduler's
// zero-overhead baseline; the parity tests guarantee identical output at
// every point. ---

func parallelMineBench(b *testing.B, ix *seq.Index, opt core.Options, workers int) {
	b.Helper()
	b.ReportAllocs()
	var patterns int
	for i := 0; i < b.N; i++ {
		res, err := core.MineParallel(ix, opt, workers)
		if err != nil {
			b.Fatal(err)
		}
		patterns = res.NumPatterns
	}
	b.ReportMetric(float64(patterns), "patterns")
}

func BenchmarkFig2ParallelScaling(b *testing.B) {
	_, ix := questScaled(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("All/minsup=6/workers=%d", workers), func(b *testing.B) {
			parallelMineBench(b, ix, core.Options{MinSupport: 6, DiscardPatterns: true}, workers)
		})
		b.Run(fmt.Sprintf("Closed/minsup=6/workers=%d", workers), func(b *testing.B) {
			parallelMineBench(b, ix, core.Options{MinSupport: 6, Closed: true, DiscardPatterns: true}, workers)
		})
	}
}

// --- Parallel scaling of the best-first top-k search (sharded frontiers,
// shared k-th-best bound) on the same workload. ---

func BenchmarkTopKParallelScaling(b *testing.B) {
	_, ix := questScaled(b)
	for _, k := range []int{10, 100, 1000} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("Closed/k=%d/workers=%d", k, workers), func(b *testing.B) {
				b.ReportAllocs()
				var patterns int
				for i := 0; i < b.N; i++ {
					res, err := core.MineTopKParallel(nil, ix, k, true, 0, workers)
					if err != nil {
						b.Fatal(err)
					}
					patterns = res.NumPatterns
				}
				b.ReportMetric(float64(patterns), "patterns")
			})
		}
	}
}

// --- Figure 3: min_sup sweep on the Gazelle-like click stream (scaled) ---

func BenchmarkFig3(b *testing.B) {
	_, ix := gazelleScaled(b)
	for _, ms := range []int{30, 20, 15, 10} {
		b.Run(fmt.Sprintf("All/minsup=%d", ms), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: ms, DiscardPatterns: true})
		})
		b.Run(fmt.Sprintf("Closed/minsup=%d", ms), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: ms, Closed: true, DiscardPatterns: true})
		})
	}
}

// --- Figure 4: min_sup sweep on the TCAS-like traces (dataset at full
// published scale; GSgrow is budget-capped below the cut-off, as in the
// paper's "..." region) ---

func BenchmarkFig4(b *testing.B) {
	_, ix := tcasFull(b)
	for _, ms := range []int{3000, 2000, 1500} {
		b.Run(fmt.Sprintf("All/minsup=%d", ms), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: ms, DiscardPatterns: true, MaxPatterns: 1_000_000})
		})
	}
	for _, ms := range []int{3000, 2000, 1500, 1000} {
		b.Run(fmt.Sprintf("Closed/minsup=%d", ms), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: ms, Closed: true, DiscardPatterns: true})
		})
	}
}

// --- Figure 5: varying the number of sequences (scaled: D thousands of
// sequences, C=S=25, N=2, min_sup=20) ---

func BenchmarkFig5(b *testing.B) {
	for _, d := range []int{1, 2, 3} {
		d := d
		_, ix := benchDB(b, fmt.Sprintf("fig5-%d", d), func() (*seq.DB, error) {
			// Pattern pool pinned across the sweep so pattern frequencies
			// grow with D, as in the paper's fixed-pool Quest setup.
			return datagen.Quest(datagen.QuestParams{D: d, C: 25, N: 2, S: 12, NumPatterns: 800, Seed: 1})
		})
		b.Run(fmt.Sprintf("All/D=%dk", d), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: 20, DiscardPatterns: true})
		})
		b.Run(fmt.Sprintf("Closed/D=%dk", d), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: 20, Closed: true, DiscardPatterns: true})
		})
	}
}

// --- Figure 6: varying the average sequence length (scaled: D=2, N=2,
// C=S swept, min_sup=20) ---

func BenchmarkFig6(b *testing.B) {
	for _, c := range []int{10, 20, 30, 40} {
		_, ix := benchDB(b, fmt.Sprintf("fig6-%d", c), func() (*seq.DB, error) {
			return datagen.Quest(datagen.QuestParams{D: 2, C: c, N: 2, S: c / 2, Seed: 1})
		})
		b.Run(fmt.Sprintf("All/len=%d", c), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: 20, DiscardPatterns: true})
		})
		b.Run(fmt.Sprintf("Closed/len=%d", c), func(b *testing.B) {
			mineBench(b, ix, core.Options{MinSupport: 20, Closed: true, DiscardPatterns: true})
		})
	}
}

// --- Figure 7 / case study: JBoss-like traces, closed mining plus the
// post-processing pipeline (scaled-down trace count and noise) ---

func BenchmarkCaseStudy(b *testing.B) {
	db, ix := benchDB(b, "jboss", func() (*seq.DB, error) {
		return datagen.JBoss(datagen.JBossParams{NumTraces: 12, NoiseMean: 2, Seed: 9})
	})
	b.Run("Mine", func(b *testing.B) {
		mineBench(b, ix, core.Options{MinSupport: 12, Closed: true, DiscardPatterns: true})
	})
	b.Run("Pipeline", func(b *testing.B) {
		res, err := core.Mine(ix, core.Options{MinSupport: 12, Closed: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kept := postprocess.CaseStudyPipeline(res.Patterns, 0.40)
			if len(kept[0].Events) < 66 {
				b.Fatalf("longest pattern %d < 66", len(kept[0].Events))
			}
		}
	})
	_ = db
}

// --- Experiment 1 sidebar: sequential-pattern baselines on the same data
// (the paper compares CloGSgrow against PrefixSpan, CloSpan and BIDE;
// remember these solve the easier sequence-count problem) ---

func BenchmarkBaselinesQuest(b *testing.B) {
	db, _ := questScaled(b)
	b.Run("PrefixSpan/minsup=20", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.MinePrefixSpan(db, 20, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BIDE/minsup=20", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.MineBIDE(db, 20, 0, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CloSpanStyle/minsup=20", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.MineCloSpanStyle(db, 20, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation A1: candidate event lists vs full alphabet scan ---

func BenchmarkAblationCandidateEvents(b *testing.B) {
	_, ix := questScaled(b)
	b.Run("CandidateLists", func(b *testing.B) {
		mineBench(b, ix, core.Options{MinSupport: 10, DiscardPatterns: true})
	})
	b.Run("FullAlphabet", func(b *testing.B) {
		mineBench(b, ix, core.Options{MinSupport: 10, DiscardPatterns: true, FullAlphabetCandidates: true})
	})
}

// --- Ablation A2: landmark border checking on/off in CloGSgrow ---

func BenchmarkAblationLBCheck(b *testing.B) {
	_, ix := tcasFull(b)
	b.Run("WithLBCheck", func(b *testing.B) {
		mineBench(b, ix, core.Options{MinSupport: 1500, Closed: true, DiscardPatterns: true})
	})
	b.Run("WithoutLBCheck", func(b *testing.B) {
		mineBench(b, ix, core.Options{MinSupport: 1500, Closed: true, DiscardPatterns: true, DisableLBCheck: true})
	})
}

// --- Ablation A3: CloGSgrow vs mine-all + closed post-filter. The
// crossover depends on the all/closed ratio: on the Quest data at
// min_sup 10 the full set is only ~1.2x the closed set and post-filtering
// wins; on TCAS at min_sup 1000 the ratio is ~110x and CloGSgrow wins
// decisively (below GSgrow's cut-off, post-filtering is impossible
// altogether). ---

func BenchmarkAblationClosedPostFilter(b *testing.B) {
	_, qix := questScaled(b)
	b.Run("Quest/CloGSgrow", func(b *testing.B) {
		mineBench(b, qix, core.Options{MinSupport: 10, Closed: true, DiscardPatterns: true})
	})
	b.Run("Quest/MineAllThenFilter", func(b *testing.B) {
		postFilterBench(b, qix, 10)
	})
	_, tix := tcasFull(b)
	b.Run("TCAS/CloGSgrow", func(b *testing.B) {
		mineBench(b, tix, core.Options{MinSupport: 1000, Closed: true, DiscardPatterns: true})
	})
	b.Run("TCAS/MineAllThenFilter", func(b *testing.B) {
		postFilterBench(b, tix, 1000)
	})
}

func postFilterBench(b *testing.B, ix *seq.Index, minSup int) {
	b.Helper()
	b.ReportAllocs()
	var kept int
	for i := 0; i < b.N; i++ {
		res, err := core.Mine(ix, core.Options{MinSupport: minSup})
		if err != nil {
			b.Fatal(err)
		}
		kept = len(filterClosed(res.Patterns))
	}
	b.ReportMetric(float64(kept), "patterns")
}

// filterClosed is the naive post-filter: keep patterns with no
// equal-support proper supersequence in the mined set.
func filterClosed(patterns []core.Pattern) []core.Pattern {
	bySupport := map[int][]core.Pattern{}
	for _, p := range patterns {
		bySupport[p.Support] = append(bySupport[p.Support], p)
	}
	var out []core.Pattern
	for _, bucket := range bySupport {
		for _, p := range bucket {
			closed := true
			for _, q := range bucket {
				if len(q.Events) > len(p.Events) && isSubseqIDs(p.Events, q.Events) {
					closed = false
					break
				}
			}
			if closed {
				out = append(out, p)
			}
		}
	}
	return out
}

func isSubseqIDs(a, b []seq.EventID) bool {
	i := 0
	for j := 0; i < len(a) && j < len(b); j++ {
		if a[i] == b[j] {
			i++
		}
	}
	return i == len(a)
}

// --- Ablation A4: compressed (i, l1, ln) instances vs full landmarks ---

func BenchmarkAblationCompressedInstances(b *testing.B) {
	_, ix := questScaled(b)
	b.Run("Compressed", func(b *testing.B) {
		mineBench(b, ix, core.Options{MinSupport: 8, DiscardPatterns: true})
	})
	b.Run("FullLandmarks", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MineAllFull(ix, core.Options{MinSupport: 8, DiscardPatterns: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Extension: gap-constrained mining (paper §V future work) ---

func BenchmarkGapConstrained(b *testing.B) {
	db, _ := tcasFull(b)
	small := seq.NewDB()
	for i := 0; i < 200 && i < len(db.Seqs); i++ {
		var names []string
		for _, e := range db.Seqs[i] {
			names = append(names, db.Dict.Name(e))
		}
		small.Add("", names)
	}
	for _, maxGap := range []int{0, 2} {
		b.Run(fmt.Sprintf("maxgap=%d", maxGap), func(b *testing.B) {
			b.ReportAllocs()
			var n int
			for i := 0; i < b.N; i++ {
				res, err := gapped.Mine(small, gapped.Options{MinSupport: 150, MaxGap: maxGap, MaxPatternLength: 5})
				if err != nil {
					b.Fatal(err)
				}
				n = len(res.Patterns)
			}
			b.ReportMetric(float64(n), "patterns")
		})
	}
}

// --- Micro-benchmarks of the primitives ---

func BenchmarkSupportOf(b *testing.B) {
	db, ix := tcasFull(b)
	pattern, err := db.EventSeq([]string{"cycle.begin", "advisory.eval", "cycle.commit"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if core.SupportOf(ix, pattern) == 0 {
			b.Fatal("unexpected zero support")
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	db, _ := gazelleScaled(b)
	b.Run("BinarySearch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq.NewIndex(db)
		}
	})
	b.Run("FastNext", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq.NewIndexWith(db, seq.IndexOptions{FastNext: true})
		}
	})
}

func BenchmarkPublicAPI(b *testing.B) {
	pub := NewDatabase()
	pub.AddString("S1", "ABCACBDDB")
	pub.AddString("S2", "ACDBACADD")
	b.Run("Support", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if pub.Support([]string{"A", "C", "B"}) != 3 {
				b.Fatal("wrong support")
			}
		}
	})
	b.Run("MineClosed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pub.MineClosed(Options{MinSupport: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDurableAppend measures durable append throughput: one
// 8-record batch per op into a database directory, under the two fsync
// policies a production deployment chooses between. fsync=always pays
// one fsync per op (the acknowledged-writes-survive-anything contract);
// fsync=interval decouples acknowledgment from the disk barrier. Auto-
// checkpointing is left at the default, so the numbers include the
// amortized compaction cost a real ingest pays.
func BenchmarkDurableAppend(b *testing.B) {
	batch := make([]Record, 8)
	for i := range batch {
		batch[i] = Record{Events: []string{
			fmt.Sprintf("ev%d", i), "login", "view", fmt.Sprintf("ev%d", (i*7)%16), "logout",
		}}
	}
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			db, err := Open(b.TempDir(), OpenOptions{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(8*b.N), "records")
		})
	}
}

// BenchmarkDurableAppendConcurrent measures what group commit buys:
// acked-records/s under fsync=always as the number of concurrent
// appenders grows. Each op is ONE durably acknowledged single-record
// append; `clients` goroutines race to claim ops from a shared counter,
// so clients=1 is the single-appender latency (the adaptive window must
// keep it within one commit window of the serialized path) and
// clients=16 is the coalescing case — the committer packs concurrent
// commits into one write + one fsync, reported directly as fsyncs/rec
// (the acceptance floor is < 0.25 at clients=16). The nogroup variant
// (CommitMaxBatch < 0) is the serialized before-number on identical
// hardware, and fsync=interval bounds what any fsync=always scheme can
// reach.
func BenchmarkDurableAppendConcurrent(b *testing.B) {
	rec := []Record{{Events: []string{"login", "view", "logout"}}}
	run := func(b *testing.B, clients int, opt OpenOptions) {
		db, err := Open(b.TempDir(), opt)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		if _, err := db.Append(rec); err != nil { // warm: WAL + first segment exist
			b.Fatal(err)
		}
		syncsBefore := db.Persistence().Fsyncs
		var next atomic.Int64
		var wg sync.WaitGroup
		b.ReportAllocs()
		b.ResetTimer()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(b.N) {
					if _, err := db.Append(rec); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "records/s")
		}
		b.ReportMetric(float64(db.Persistence().Fsyncs-syncsBefore)/float64(b.N), "fsyncs/rec")
	}
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("fsync=always/clients=%d", clients), func(b *testing.B) {
			run(b, clients, OpenOptions{Sync: SyncAlways})
		})
	}
	b.Run("fsync=always-nogroup/clients=16", func(b *testing.B) {
		run(b, 16, OpenOptions{Sync: SyncAlways, CommitMaxBatch: -1})
	})
	b.Run("fsync=interval/clients=16", func(b *testing.B) {
		run(b, 16, OpenOptions{Sync: SyncInterval})
	})
}

// BenchmarkInMemoryAppend is the regression guard for the zero-config
// default: the durable plumbing must cost the in-memory append path
// nothing but a nil check.
func BenchmarkInMemoryAppend(b *testing.B) {
	batch := make([]Record, 8)
	for i := range batch {
		batch[i] = Record{Events: []string{
			fmt.Sprintf("ev%d", i), "login", "view", fmt.Sprintf("ev%d", (i*7)%16), "logout",
		}}
	}
	db := NewDatabase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
}

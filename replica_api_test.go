package repro

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/store"
)

// replicaTestPrimary serves one durable database's replication feed the
// way the real server does, for exercising the public OpenReplica API.
type replicaTestPrimary struct {
	db  *Database
	srv *httptest.Server
}

type replicaTestSource struct{ db *Database }

func (s replicaTestSource) Dir() string        { return s.db.Persistence().Dir }
func (s replicaTestSource) Generation() uint64 { return s.db.Snapshot().Generation() }
func (s replicaTestSource) Checkpoint() error  { return s.db.Compact() }
func (s replicaTestSource) Epoch() string      { return "api-test-epoch" }

func newReplicaTestPrimary(t testing.TB) *replicaTestPrimary {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "primary"), OpenOptions{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	feed := &repl.Feed{Src: replicaTestSource{db}, Poll: time.Millisecond, Heartbeat: 20 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/replication/events/segment", feed.ServeSegment)
	mux.HandleFunc("/v1/replication/events/wal", feed.ServeWAL)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() { srv.Close(); db.Close() })
	return &replicaTestPrimary{db: db, srv: srv}
}

func waitReplicaConverged(t *testing.T, r *Replica, p *replicaTestPrimary) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		want := p.db.Snapshot()
		got := r.Database().Snapshot()
		if got.Generation() == want.Generation() &&
			reflect.DeepEqual(got.s.DB().Seqs, want.s.DB().Seqs) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica never converged: replica gen %d, primary gen %d (status %+v)",
		r.Database().Snapshot().Generation(), p.db.Snapshot().Generation(), r.Status())
}

func TestOpenReplicaTailsAndPromotes(t *testing.T) {
	p := newReplicaTestPrimary(t)
	if _, err := p.db.Append([]Record{{Label: "S1", Events: []string{"a", "b", "a", "b"}}}); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "replica")
	r, err := OpenReplica(p.srv.URL, "events", dir, ReplicaOptions{
		Open:    OpenOptions{Sync: SyncNever},
		Backoff: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReplicaConverged(t, r, p)

	// Live appends stream through, and mining on the replica matches.
	if _, err := p.db.Append([]Record{{Label: "S2", Events: []string{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	waitReplicaConverged(t, r, p)
	want, err := p.db.Mine(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Database().Mine(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Fatalf("replica mine = %+v, primary mine = %+v", got.Patterns, want.Patterns)
	}

	// Writes are rejected with the public sentinel while following.
	if _, err := r.Database().Append([]Record{{Events: []string{"x"}}}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("replica Append err = %v, want ErrNotPrimary", err)
	}
	if p := r.Database().Persistence(); p.Role != store.RoleFollower {
		t.Fatalf("replica role = %q, want follower", p.Role)
	}
	s := r.Status()
	if s.Role != store.RoleFollower || s.Database != "events" || s.Bootstraps != 1 {
		t.Fatalf("status %+v", s)
	}

	// Promotion flips the same handle writable.
	if err := r.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Database().Append([]Record{{Events: []string{"x"}}}); err != nil {
		t.Fatalf("Append after promote: %v", err)
	}
	if p := r.Database().Persistence(); p.Role != store.RolePrimary {
		t.Fatalf("role after promote = %q", p.Role)
	}
}

func TestOpenReplicaResumes(t *testing.T) {
	p := newReplicaTestPrimary(t)
	if _, err := p.db.Append([]Record{{Label: "S1", Events: []string{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "replica")
	open := func() *Replica {
		r, err := OpenReplica(p.srv.URL, "events", dir, ReplicaOptions{
			Open:    OpenOptions{Sync: SyncNever},
			Backoff: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := open()
	waitReplicaConverged(t, r, p)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.db.Append([]Record{{Label: "S2", Events: []string{"b", "a"}}}); err != nil {
		t.Fatal(err)
	}
	r2 := open()
	defer r2.Close()
	waitReplicaConverged(t, r2, p)
	if got := r2.Status().Bootstraps; got != 0 {
		t.Fatalf("restart bootstrapped %d times, want 0 (resume)", got)
	}
}

// BenchmarkReplicaCatchup measures the replication pipeline end to end
// over a real HTTP stream, without fsync (both sides SyncNever) so the
// numbers track code, not disk. Two shapes:
//
//   - bootstrap: one fresh OpenReplica against a seeded primary — segment
//     download plus WAL replay through the store codecs.
//   - tail=N: a connected follower catching up on N freshly appended
//     records — frame shipping, decode, and in-order apply.
//
// Network benches are scheduler- and socket-dependent; bench_compare.sh
// treats ReplicaCatchup as warn-only on both ns/op and allocs/op.
func BenchmarkReplicaCatchup(b *testing.B) {
	waitGen := func(r *Replica, want uint64) {
		for r.Database().Snapshot().Generation() < want {
			time.Sleep(200 * time.Microsecond)
		}
	}
	openReplica := func(b *testing.B, p *replicaTestPrimary, dir string) *Replica {
		r, err := OpenReplica(p.srv.URL, "events", dir, ReplicaOptions{
			Open:    OpenOptions{Sync: SyncNever, CheckpointWALBytes: -1},
			Backoff: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	appendBatch := func(b *testing.B, p *replicaTestPrimary, n int) {
		for i := 0; i < n; i++ {
			if _, err := p.db.Append([]Record{{Label: fmt.Sprintf("S%d", i%16), Events: []string{"a", "b", "c", "a"}}}); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("bootstrap", func(b *testing.B) {
		p := newReplicaTestPrimary(b)
		appendBatch(b, p, 256)
		want := p.db.Snapshot().Generation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := openReplica(b, p, filepath.Join(b.TempDir(), fmt.Sprintf("r%d", i)))
			waitGen(r, want)
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tail=256", func(b *testing.B) {
		p := newReplicaTestPrimary(b)
		appendBatch(b, p, 1)
		r := openReplica(b, p, filepath.Join(b.TempDir(), "replica"))
		defer r.Close()
		waitGen(r, p.db.Snapshot().Generation())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			appendBatch(b, p, 256)
			waitGen(r, p.db.Snapshot().Generation())
		}
	})
}

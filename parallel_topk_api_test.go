package repro

import (
	"strings"
	"testing"
)

func TestPublicWorkers(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCACBDDB")
	db.AddString("S2", "ACDBACADD")
	seqRes, err := db.MineClosed(Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := db.MineClosed(Options{MinSupport: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes.Patterns) != len(parRes.Patterns) {
		t.Fatalf("sequential %d vs parallel %d patterns", len(seqRes.Patterns), len(parRes.Patterns))
	}
	for i := range seqRes.Patterns {
		a := strings.Join(seqRes.Patterns[i].Events, "")
		b := strings.Join(parRes.Patterns[i].Events, "")
		if a != b || seqRes.Patterns[i].Support != parRes.Patterns[i].Support {
			t.Errorf("pattern %d: %s/%d vs %s/%d", i, a, seqRes.Patterns[i].Support, b, parRes.Patterns[i].Support)
		}
	}
}

// TestPublicTopKWorkers: TopKOptions.Workers returns byte-identical
// results to the sequential search for every k, and a deterministic
// MaxPatterns budget under Workers matches the sequential prefix.
func TestPublicTopKWorkers(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCACBDDBABCACBDDB")
	db.AddString("S2", "ACDBACADDACDBACADD")
	for _, closed := range []bool{false, true} {
		for _, k := range []int{1, 10, 100} {
			seqRes, err := db.MineTopKWith(k, closed, TopKOptions{})
			if err != nil {
				t.Fatal(err)
			}
			parRes, err := db.MineTopKWith(k, closed, TopKOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(seqRes.Patterns) != len(parRes.Patterns) {
				t.Fatalf("closed=%v k=%d: sequential %d vs parallel %d patterns",
					closed, k, len(seqRes.Patterns), len(parRes.Patterns))
			}
			for i := range seqRes.Patterns {
				a := strings.Join(seqRes.Patterns[i].Events, "")
				b := strings.Join(parRes.Patterns[i].Events, "")
				if a != b || seqRes.Patterns[i].Support != parRes.Patterns[i].Support {
					t.Errorf("closed=%v k=%d rank %d: %s/%d vs %s/%d",
						closed, k, i, a, seqRes.Patterns[i].Support, b, parRes.Patterns[i].Support)
				}
			}
		}
	}
}

// TestPublicWorkersBudgetDeterministic: Options.MaxPatterns under Workers
// returns exactly the sequential run's first N patterns, as documented.
func TestPublicWorkersBudgetDeterministic(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCACBDDBABCACBDDB")
	db.AddString("S2", "ACDBACADDACDBACADD")
	seqRes, err := db.Mine(Options{MinSupport: 2, MaxPatterns: 25})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := db.Mine(Options{MinSupport: 2, MaxPatterns: 25, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !seqRes.Truncated || !parRes.Truncated {
		t.Fatalf("expected both runs truncated (seq=%v par=%v)", seqRes.Truncated, parRes.Truncated)
	}
	if len(parRes.Patterns) != len(seqRes.Patterns) {
		t.Fatalf("budget: sequential %d vs parallel %d patterns", len(seqRes.Patterns), len(parRes.Patterns))
	}
	for i := range seqRes.Patterns {
		a := strings.Join(seqRes.Patterns[i].Events, "")
		b := strings.Join(parRes.Patterns[i].Events, "")
		if a != b {
			t.Errorf("budget rank %d: %s vs %s", i, a, b)
		}
	}
}

func TestPublicMineTopK(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCACBDDB")
	db.AddString("S2", "ACDBACADD")
	res, err := db.MineTopK(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 {
		t.Fatalf("got %d patterns", len(res.Patterns))
	}
	if strings.Join(res.Patterns[0].Events, "") != "AD" || res.Patterns[0].Support != 5 {
		t.Errorf("top closed pattern = %v/%d, want AD/5", res.Patterns[0].Events, res.Patterns[0].Support)
	}
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i-1].Support < res.Patterns[i].Support {
			t.Error("top-k not in support order")
		}
	}
	if _, err := db.MineTopK(0, false); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPublicTopKBeyondTotal(t *testing.T) {
	db := NewDatabase()
	db.AddString("", "AB")
	res, err := db.MineTopK(100, false)
	if err != nil {
		t.Fatal(err)
	}
	// Patterns of AB: A, B, AB.
	if len(res.Patterns) != 3 {
		t.Errorf("got %d patterns, want 3", len(res.Patterns))
	}
}

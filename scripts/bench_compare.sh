#!/usr/bin/env bash
# Compare two BENCH_*.json files produced by scripts/bench_smoke.sh and
# print per-benchmark deltas (ns/op, allocs/op). Exits non-zero when any
# benchmark present in both files regressed by more than the threshold
# (default 20% ns/op) — wire it into CI as a warning on noisy runners, or
# as a hard gate on dedicated ones.
#
# Usage: scripts/bench_compare.sh OLD.json NEW.json [max_regression_pct]
set -euo pipefail

if [ $# -lt 2 ]; then
	echo "usage: $0 OLD.json NEW.json [max_regression_pct]" >&2
	exit 2
fi
OLD="$1"
NEW="$2"
THRESHOLD="${3:-20}"

# The JSON is one benchmark object per line (bench_smoke.sh's own output
# format), so awk can parse it without jq.
awk -v threshold="$THRESHOLD" -v oldfile="$OLD" -v newfile="$NEW" '
function field(line, key,    re, s) {
	re = "\"" key "\": [-0-9.]+"
	if (match(line, re) == 0) return "null"
	s = substr(line, RSTART, RLENGTH)
	sub(/.*: /, "", s)
	return s
}
function name(line,    s) {
	if (match(line, /"name": "[^"]+"/) == 0) return ""
	s = substr(line, RSTART, RLENGTH)
	sub(/^"name": "/, "", s); sub(/"$/, "", s)
	return s
}
{
	n = name($0)
	if (n == "") next
	if (FILENAME == oldfile) {
		old_ns[n] = field($0, "ns_per_op")
		old_allocs[n] = field($0, "allocs_per_op")
		old_order[oc++] = n
	} else {
		new_ns[n] = field($0, "ns_per_op")
		new_allocs[n] = field($0, "allocs_per_op")
	}
}
END {
	printf "%-40s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op old -> new"
	worst = 0
	for (i = 0; i < oc; i++) {
		n = old_order[i]
		if (!(n in new_ns)) { printf "%-40s %12s %12s %8s\n", n, old_ns[n], "-", "gone"; continue }
		o = old_ns[n] + 0; w = new_ns[n] + 0
		delta = (o > 0) ? (w - o) * 100.0 / o : 0
		if (delta > worst) { worst = delta; worst_name = n }
		printf "%-40s %12d %12d %+7.1f%%  %s -> %s\n", n, o, w, delta, old_allocs[n], new_allocs[n]
	}
	for (n in new_ns) if (!(n in old_ns)) printf "%-40s %12s %12d %8s\n", n, "-", new_ns[n] + 0, "new"
	if (worst > threshold) {
		printf "\nFAIL: %s regressed %.1f%% ns/op (threshold %s%%)\n", worst_name, worst, threshold
		exit 1
	}
	printf "\nOK: worst ns/op delta %+.1f%% (threshold %s%%)\n", worst, threshold
}
' "$OLD" "$NEW"

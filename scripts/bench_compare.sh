#!/usr/bin/env bash
# Compare two BENCH_*.json files produced by scripts/bench_smoke.sh and
# print per-benchmark deltas (ns/op, allocs/op). Exit status encodes the
# regression policy CI enforces:
#
#   - ns/op regression >  FAIL_PCT (default 50%)  -> exit 1 (hard failure)
#   - any allocs/op increase                      -> exit 1 (hard failure;
#     the mining core is allocation-free by design, so any new alloc is a
#     real change, not noise) — EXCEPT multi-worker benchmarks
#     ("workers=2" and up), whose per-shard/per-steal allocation counts
#     are scheduler-dependent: those get a +-5% tolerance band and a
#     warning instead, because an identical binary moves a few percent
#     run to run and a zero-tolerance gate there only produces flakes
#   - ns/op regression in (WARN_PCT, FAIL_PCT]    -> exit 0 with a GitHub
#     ::warning:: annotation (noisy-runner territory)
#   - fsync-bound benchmarks ("fsync=always") never hard-fail on ns/op,
#     only warn: their wall time is disk-commit latency, not code, and an
#     identical binary measures 3x+ spreads across runs on shared or
#     virtualized storage. Their allocs/op stays zero-tolerance.
#   - replication benchmarks ("ReplicaCatchup") are warn-only on BOTH
#     ns/op and allocs/op: they push an HTTP stream between processes'
#     worth of goroutines, so wall time and allocation counts are
#     socket- and scheduler-dependent.
#   - allocs/op improvements > 50%                -> exit 0 with a GitHub
#     ::notice:: annotation ("alloc win"): large deliberate drops are
#     surfaced in the PR instead of passing silently
#   - a missing or unparseable input file                 -> exit 2 with
#     an explanation (never a green empty comparison: that would silently
#     disable the gate)
#
# Benchmarks present on only one side are SKIPPED, never failed: a
# benchmark absent from the baseline is new in this PR (it gets a baseline
# when the PR records its own BENCH_PR<N>.json), and one absent from the
# new run was removed or renamed. Both are reported in the summary line so
# a silently shrinking suite is still visible.
#
# Usage: scripts/bench_compare.sh OLD.json NEW.json [warn_pct] [fail_pct]
set -euo pipefail

if [ $# -lt 2 ]; then
	echo "usage: $0 OLD.json NEW.json [warn_pct] [fail_pct]" >&2
	exit 2
fi
OLD="$1"
NEW="$2"
WARN_PCT="${3:-20}"
FAIL_PCT="${4:-50}"

# Refuse to "compare" against nothing: a missing or unparseable baseline
# would otherwise produce an empty delta table and a green exit, silently
# disabling the regression gate (e.g. after a typo'd BENCH_PR<N>.json name
# in CI). Exit 2 distinguishes "gate misconfigured" from "gate failed".
for f in "$OLD" "$NEW"; do
	if [ ! -r "$f" ]; then
		echo "bench_compare: cannot read '$f' — file is missing or unreadable." >&2
		echo "bench_compare: record baselines with: scripts/bench_smoke.sh $f" >&2
		exit 2
	fi
	if ! grep -q '"name": "Benchmark' "$f"; then
		echo "bench_compare: '$f' contains no benchmark entries — empty, truncated, or not a bench_smoke.sh JSON." >&2
		exit 2
	fi
done

# The JSON is one benchmark object per line (bench_smoke.sh's own output
# format), so awk can parse it without jq.
awk -v warn_pct="$WARN_PCT" -v fail_pct="$FAIL_PCT" -v oldfile="$OLD" -v newfile="$NEW" '
function field(line, key,    re, s) {
	re = "\"" key "\": [-0-9.]+"
	if (match(line, re) == 0) return "null"
	s = substr(line, RSTART, RLENGTH)
	sub(/.*: /, "", s)
	return s
}
function name(line,    s) {
	if (match(line, /"name": "[^"]+"/) == 0) return ""
	s = substr(line, RSTART, RLENGTH)
	sub(/^"name": "/, "", s); sub(/"$/, "", s)
	return s
}
{
	n = name($0)
	if (n == "") next
	if (FILENAME == oldfile) {
		old_ns[n] = field($0, "ns_per_op")
		old_allocs[n] = field($0, "allocs_per_op")
		old_order[oc++] = n
	} else {
		new_ns[n] = field($0, "ns_per_op")
		new_allocs[n] = field($0, "allocs_per_op")
		new_order[nc++] = n
	}
}
END {
	printf "%-40s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op old -> new"
	worst = 0; nfail_ns = 0; nfail_alloc = 0; nwarn = 0; ngone = 0; nnew = 0; nwin = 0
	for (i = 0; i < oc; i++) {
		n = old_order[i]
		if (!(n in new_ns)) { printf "%-40s %12s %12s %8s\n", n, old_ns[n], "-", "gone"; ngone++; continue }
		o = old_ns[n] + 0; w = new_ns[n] + 0
		delta = (o > 0) ? (w - o) * 100.0 / o : 0
		if (delta > worst) { worst = delta; worst_name = n }
		mark = ""
		if (old_allocs[n] != "null" && new_allocs[n] != "null" && new_allocs[n] + 0 > old_allocs[n] + 0) {
			adelta = (old_allocs[n] + 0 > 0) ? (new_allocs[n] - old_allocs[n]) * 100.0 / old_allocs[n] : 100
			# Multi-worker benchmarks allocate per-shard/per-steal state
			# whose count depends on scheduling, so their allocs/op moves a
			# few percent run to run even on identical code (PR4 already
			# notes that only scheduling-dependent counters may move).
			# Tolerate small moves there with a warning; single-worker and
			# sequential paths are deterministic and stay zero-tolerance.
			# Concurrent-client benchmarks (clients=N) are equally
			# scheduler-dependent: group-commit batch composition moves
			# with goroutine timing, so pool hits and per-batch state
			# shift a few percent between identical runs.
			# ReplicaCatchup pushes an HTTP stream between goroutines:
			# buffer reuse, socket internals, and frame batching all move
			# with scheduling, so its allocs/op is warn-only at any size.
			if (n ~ /ReplicaCatchup/) {
				mark = "  << alloc warn (network, +" sprintf("%.1f", adelta) "%)"
				warns[nwarn++] = sprintf("%s: allocs/op %s -> %s (+%.1f%%, network bench, warn-only)", n, old_allocs[n], new_allocs[n], adelta)
			} else if (n ~ /(workers=([2-9]|[0-9][0-9])|clients=[0-9]+)/ && adelta <= 5) {
				mark = "  << alloc warn (parallel, +" sprintf("%.1f", adelta) "%)"
				warns[nwarn++] = sprintf("%s: allocs/op %s -> %s (+%.1f%%, scheduler-dependent parallel bench)", n, old_allocs[n], new_allocs[n], adelta)
			} else {
				mark = "  << ALLOC REGRESSION"
				alloc_fail[nfail_alloc++] = sprintf("%s: allocs/op %s -> %s", n, old_allocs[n], new_allocs[n])
			}
		} else if (old_allocs[n] != "null" && new_allocs[n] != "null" && old_allocs[n] + 0 > 0 \
			&& (old_allocs[n] - new_allocs[n]) * 100.0 / old_allocs[n] > 50) {
			# Large allocs/op DROPS are flagged too, as informational wins:
			# a >50% improvement is a deliberate change worth surfacing in
			# the PR (and it resets the bar the next baseline will hold).
			wdelta = (old_allocs[n] - new_allocs[n]) * 100.0 / old_allocs[n]
			mark = sprintf("  << alloc win (-%.1f%%)", wdelta)
			wins[nwin++] = sprintf("%s: allocs/op %s -> %s (-%.1f%%)", n, old_allocs[n], new_allocs[n], wdelta)
		}
		if (delta > fail_pct && n ~ /fsync=always|ReplicaCatchup/) {
			# Disk-commit latency (fsync=always) or socket+scheduler
			# latency (ReplicaCatchup), not code: same-binary runs spread
			# widely, so ns/op is warn-only here.
			mark = mark "  << warn (fsync/network-bound)"
			warns[nwarn++] = sprintf("%s: ns/op %+.1f%% (fsync/network-bound, warn-only)", n, delta)
		} else if (delta > fail_pct) {
			mark = mark "  << FAIL"
			ns_fail[nfail_ns++] = sprintf("%s: ns/op %+.1f%% (threshold %s%%)", n, delta, fail_pct)
		} else if (delta > warn_pct) {
			mark = mark "  << warn"
			warns[nwarn++] = sprintf("%s: ns/op %+.1f%% (warn threshold %s%%)", n, delta, warn_pct)
		}
		printf "%-40s %12d %12d %+7.1f%%  %s -> %s%s\n", n, o, w, delta, old_allocs[n], new_allocs[n], mark
	}
	# Benchmarks only present on the new side are additions from this PR:
	# print them in file order WITH their measured values (ns/op and
	# allocs/op), so a new suite shows up in the delta table as real
	# numbers instead of vanishing into a skip count.
	for (i = 0; i < nc; i++) {
		n = new_order[i]
		if (n in old_ns) continue
		printf "%-40s %12s %12d %8s  -> %s\n", n, "-", new_ns[n] + 0, "new", new_allocs[n]
		nnew++
	}

	for (i = 0; i < nwin; i++) printf "::notice::benchmark improvement: %s\n", wins[i]
	for (i = 0; i < nwarn; i++) printf "::warning::benchmark regression: %s\n", warns[i]
	failed = 0
	for (i = 0; i < nfail_ns; i++) { printf "\nFAIL: %s\n", ns_fail[i]; failed = 1 }
	for (i = 0; i < nfail_alloc; i++) { printf "\nFAIL: %s\n", alloc_fail[i]; failed = 1 }
	if (failed) exit 1
	printf "\nOK: worst ns/op delta %+.1f%% (warn >%s%%, fail >%s%% or any alloc increase); %d warning(s); %d alloc win(s); skipped %d new / %d gone\n", worst, warn_pct, fail_pct, nwarn, nwin, nnew, ngone
}
' "$OLD" "$NEW"

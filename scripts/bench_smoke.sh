#!/usr/bin/env bash
# Benchmark smoke run: the Fig2 min_sup sweep, the parallel-scaling sweeps
# and the Table 1 semantics check, emitted as BENCH_PR<N>.json with
# per-benchmark pattern counts, ns/op, B/op and allocs/op plus total wall
# time. This is the repo's perf trajectory: each PR emits BENCH_PR<N>.json
# from the same suite, and scripts/bench_compare.sh diffs two of them so
# regressions show up as a per-benchmark delta table.
#
# Each benchmark runs with -count=3 and the MEDIAN of each metric is
# recorded, so a single noisy-scheduler outlier cannot trip the blocking
# CI gate.
#
# Usage: scripts/bench_smoke.sh [output.json]
#
# The default output name is deliberately NOT a committed BENCH_PR<N>.json:
# those are per-PR baselines recorded once (pass the name explicitly), and
# a bare local run must not clobber the baseline CI compares against.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_LOCAL.json}"
SUITE='Fig2|Table1|TopKParallelScaling|DurableAppend|InMemoryAppend|ReplicaCatchup'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

START_NS=$(date +%s%N)
go test -run '^$' -bench "$SUITE" -benchtime 1x -count=3 -benchmem | tee "$RAW"
END_NS=$(date +%s%N)
WALL_MS=$(((END_NS - START_NS) / 1000000))

awk -v wall_ms="$WALL_MS" -v suite="$SUITE" \
	-v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	-v go_version="$(go env GOVERSION)" '
function median(arr, cnt,    i, j, tmp) {
	# insertion sort the numeric samples, return the middle one
	for (i = 2; i <= cnt; i++) {
		tmp = arr[i]; j = i - 1
		while (j >= 1 && arr[j] + 0 > tmp + 0) { arr[j + 1] = arr[j]; j-- }
		arr[j + 1] = tmp
	}
	return arr[int((cnt + 1) / 2)]
}
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	if (!(name in idx)) { order[++n] = name; idx[name] = 1 }
	cnt[name]++
	iters[name] = $2
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns[name, cnt[name]] = $i
		if ($(i + 1) == "patterns") pat[name, cnt[name]] = $i
		if ($(i + 1) == "B/op") by[name, cnt[name]] = $i
		if ($(i + 1) == "allocs/op") al[name, cnt[name]] = $i
	}
}
END {
	printf "{\n  \"suite\": \"%s\",\n  \"commit\": \"%s\",\n  \"go\": \"%s\",\n  \"samples\": 3,\n  \"wall_ms\": %d,\n  \"benchmarks\": [\n", suite, commit, go_version, wall_ms
	for (i = 1; i <= n; i++) {
		name = order[i]
		c = cnt[name]
		for (s = 1; s <= c; s++) {
			m_ns[s] = ((name, s) in ns) ? ns[name, s] : "null"
			m_by[s] = ((name, s) in by) ? by[name, s] : "null"
			m_al[s] = ((name, s) in al) ? al[name, s] : "null"
			m_pat[s] = ((name, s) in pat) ? pat[name, s] : "null"
		}
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"patterns\": %s}%s\n", \
			name, iters[name], median(m_ns, c), median(m_by, c), median(m_al, c), median(m_pat, c), (i < n ? "," : "")
	}
	printf "  ]\n}\n"
}' "$RAW" >"$OUT"

echo "wrote $OUT"

#!/usr/bin/env bash
# Benchmark smoke run: one iteration of the Fig2 min_sup sweep and the
# Table 1 semantics check, emitted as BENCH_PR<N>.json with per-benchmark
# pattern counts, ns/op, B/op and allocs/op plus total wall time. This is
# the repo's perf trajectory: each PR emits BENCH_PR<N>.json from the same
# suite, and scripts/bench_compare.sh diffs two of them so regressions
# show up as a per-benchmark delta table.
#
# Usage: scripts/bench_smoke.sh [output.json]
#
# The default output name is deliberately NOT a committed BENCH_PR<N>.json:
# those are per-PR baselines recorded once (pass the name explicitly), and
# a bare local run must not clobber the baseline CI compares against.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_LOCAL.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

START_NS=$(date +%s%N)
go test -run '^$' -bench 'Fig2|Table1' -benchtime 1x -benchmem | tee "$RAW"
END_NS=$(date +%s%N)
WALL_MS=$(((END_NS - START_NS) / 1000000))

awk -v wall_ms="$WALL_MS" \
	-v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	-v go_version="$(go env GOVERSION)" '
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2; ns = "null"; patterns = "null"; bytes = "null"; allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "patterns") patterns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	entries[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"patterns\": %s}",
		name, iters, ns, bytes, allocs, patterns)
}
END {
	printf "{\n  \"suite\": \"Fig2|Table1\",\n  \"commit\": \"%s\",\n  \"go\": \"%s\",\n  \"wall_ms\": %d,\n  \"benchmarks\": [\n", commit, go_version, wall_ms
	for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$RAW" >"$OUT"

echo "wrote $OUT"

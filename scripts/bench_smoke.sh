#!/usr/bin/env bash
# Benchmark smoke run: one iteration of the Fig2 min_sup sweep and the
# Table 1 semantics check, emitted as BENCH_PR1.json with per-benchmark
# pattern counts and ns/op plus total wall time. This seeds the repo's
# perf trajectory: future PRs emit BENCH_PR<N>.json from the same suite so
# regressions show up as a diffable series.
#
# Usage: scripts/bench_smoke.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

START_NS=$(date +%s%N)
go test -run '^$' -bench 'Fig2|Table1' -benchtime 1x | tee "$RAW"
END_NS=$(date +%s%N)
WALL_MS=$(((END_NS - START_NS) / 1000000))

awk -v wall_ms="$WALL_MS" \
	-v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	-v go_version="$(go env GOVERSION)" '
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2; ns = "null"; patterns = "null"
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "patterns") patterns = $i
	}
	entries[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"patterns\": %s}",
		name, iters, ns, patterns)
}
END {
	printf "{\n  \"suite\": \"Fig2|Table1\",\n  \"commit\": \"%s\",\n  \"go\": \"%s\",\n  \"wall_ms\": %d,\n  \"benchmarks\": [\n", commit, go_version, wall_ms
	for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' "$RAW" >"$OUT"

echo "wrote $OUT"

#!/usr/bin/env bash
# Top-k scaling grid on the local hardware: runs the cross product of
# mode × k × workers declared in a grid-spec JSON through the arena-backed
# best-first miner, writes one CSV row per run, and prints the per-cell
# median/speedup table (speedup is against the same cell at workers=1).
# This is the "Measuring on your hardware" entry point the README points
# at: the committed README numbers came from one machine; rerun this to
# get yours.
#
# Usage: scripts/bench_grid.sh [grid.json] [out.csv]
#
# With no arguments a default spec (Quest D1C20N1S20, closed,
# k ∈ {10,100,1000}, workers ∈ {1,2,4,8}, 3 repeats) is written to
# bench_grid.json if absent and results land in bench_grid.csv.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="${1:-bench_grid.json}"
CSV="${2:-bench_grid.csv}"

if [[ ! -f "$SPEC" ]]; then
  cat > "$SPEC" <<'EOF'
{
  "quest": {"d": 1, "c": 20, "n": 1, "s": 20, "seed": 1},
  "modes": ["closed"],
  "ks": [10, 100, 1000],
  "workers": [1, 2, 4, 8],
  "repeat": 3
}
EOF
  echo "wrote default grid spec to $SPEC"
fi

echo "grid spec: $SPEC  (effective workers are capped at the $(nproc) available CPUs)"
go run ./cmd/experiments -exp grid -grid "$SPEC" -csv "$CSV"

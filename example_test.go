package repro_test

import (
	"fmt"
	"strings"

	"repro"
)

// The motivating example of the paper (Example 1.1): repetitive support
// distinguishes AB (which loops inside S1) from CD (which does not).
func ExampleDatabase_Support() {
	db := repro.NewDatabase()
	db.AddString("S1", "AABCDABB")
	db.AddString("S2", "ABCD")
	fmt.Println(db.Support([]string{"A", "B"}))
	fmt.Println(db.Support([]string{"C", "D"}))
	// Output:
	// 4
	// 2
}

// Closed mining keeps only patterns with no super-pattern of equal
// support; the frequent set shrinks from 20 patterns to 3 with no loss of
// information.
func ExampleDatabase_MineClosed() {
	db := repro.NewDatabase()
	db.AddString("S1", "AABCDABB")
	db.AddString("S2", "ABCD")
	res, err := db.MineClosed(repro.Options{MinSupport: 2})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Patterns {
		fmt.Println(strings.Join(p.Events, ""), p.Support)
	}
	// Output:
	// AABB 2
	// ABCD 2
	// AB 4
}

// SupportSet returns a maximum set of non-overlapping occurrences — the
// leftmost support set the paper's Table IV traces.
func ExampleDatabase_SupportSet() {
	db := repro.NewDatabase()
	db.AddString("S1", "ABCACBDDB")
	db.AddString("S2", "ACDBACADD")
	for _, ins := range db.SupportSet([]string{"A", "C", "B"}) {
		fmt.Println(ins.Sequence, ins.Positions)
	}
	// Output:
	// S1 [1 3 6]
	// S1 [4 5 9]
	// S2 [1 2 4]
}

// Per-sequence supports are the classification feature values proposed in
// the paper's Section V.
func ExampleDatabase_PerSequenceSupport() {
	db := repro.NewDatabase()
	db.AddString("repeat", "CABABABABABD")
	db.AddString("oneshot", "ABCD")
	fmt.Println(db.PerSequenceSupport([]string{"A", "B"}))
	// Output:
	// [5 1]
}

// Gap-constrained mining bounds the events allowed between consecutive
// pattern events; with MaxGap 0 it mines repeating substrings.
func ExampleDatabase_MineGapConstrained() {
	db := repro.NewDatabase()
	db.AddString("read", "ACGTACGTACGT")
	res, err := db.MineGapConstrained(repro.GapOptions{MinSupport: 3, MaxGap: 0, MaxPatternLength: 2})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Patterns {
		fmt.Println(strings.Join(p.Events, ""), p.Support)
	}
	// Output:
	// A 3
	// AC 3
	// C 3
	// CG 3
	// G 3
	// GT 3
	// T 3
}

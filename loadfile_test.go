package repro

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestLoadFileChars(t *testing.T) {
	db, err := LoadFile("testdata/example11.chars", Chars)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("sequences = %d", db.NumSequences())
	}
	if got := db.Support([]string{"A", "B"}); got != 4 {
		t.Errorf("sup(AB) = %d, want 4", got)
	}
	set := db.SupportSet([]string{"A", "B"})
	if len(set) != 4 || set[0].Sequence != "S1" {
		t.Errorf("support set: %+v", set)
	}
}

func TestLoadFileTokens(t *testing.T) {
	db, err := LoadFile("testdata/traces.tokens", Tokens)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 || db.NumEvents() != 6 {
		t.Fatalf("shape: %d sequences, %d events", db.NumSequences(), db.NumEvents())
	}
	if got := db.Support([]string{"request", "response"}); got != 2 {
		t.Errorf("sup(request response) = %d, want 2", got)
	}
	res, err := db.MineClosed(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The full shared flow open auth request response close is frequent
	// in both traces; it must appear among the closed patterns.
	found := false
	for _, p := range res.Patterns {
		if len(p.Events) == 5 && p.Events[0] == "open" && p.Events[4] == "close" {
			found = true
		}
	}
	if !found {
		t.Errorf("shared flow missing from closed patterns: %v", res.Patterns)
	}
}

func TestLoadFileWrongFormat(t *testing.T) {
	// chars file parsed as SPMF must fail loudly, naming the file and the
	// format and keeping the parse error (with its line number) unwrappable.
	_, err := LoadFile("testdata/example11.chars", SPMF)
	if err == nil {
		t.Fatal("chars file accepted as SPMF")
	}
	for _, want := range []string{"testdata/example11.chars", "format spmf"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	var perr *seq.ParseError
	if !errors.As(err, &perr) {
		t.Errorf("error %q does not wrap a *seq.ParseError", err)
	} else if perr.Line != 2 {
		t.Errorf("parse error line = %d, want 2 (line 1 is a comment)", perr.Line)
	}
}

func TestLoadFileMissing(t *testing.T) {
	_, err := LoadFile("testdata/no-such-file.tokens", Tokens)
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("error %q does not wrap os.ErrNotExist", err)
	}
	if !strings.Contains(err.Error(), "no-such-file.tokens") {
		t.Errorf("error %q does not name the file", err)
	}
}

func TestLoadErrorContext(t *testing.T) {
	// Load (no file involved) wraps with the format only.
	_, err := Load(strings.NewReader("A B C\n"), SPMF)
	if err == nil {
		t.Fatal("tokens text accepted as SPMF")
	}
	if !strings.Contains(err.Error(), "format spmf") {
		t.Errorf("error %q does not mention the format", err)
	}
	var perr *seq.ParseError
	if !errors.As(err, &perr) {
		t.Errorf("error %q does not wrap a *seq.ParseError", err)
	}

	// An out-of-range Format fails loudly in both entry points.
	if _, err := Load(strings.NewReader("A\n"), Format(99)); err == nil {
		t.Error("unknown format accepted by Load")
	}
	if _, err := LoadFile("testdata/example11.chars", Format(99)); err == nil {
		t.Error("unknown format accepted by LoadFile")
	}
}

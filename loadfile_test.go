package repro

import "testing"

func TestLoadFileChars(t *testing.T) {
	db, err := LoadFile("testdata/example11.chars", Chars)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("sequences = %d", db.NumSequences())
	}
	if got := db.Support([]string{"A", "B"}); got != 4 {
		t.Errorf("sup(AB) = %d, want 4", got)
	}
	set := db.SupportSet([]string{"A", "B"})
	if len(set) != 4 || set[0].Sequence != "S1" {
		t.Errorf("support set: %+v", set)
	}
}

func TestLoadFileTokens(t *testing.T) {
	db, err := LoadFile("testdata/traces.tokens", Tokens)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 || db.NumEvents() != 6 {
		t.Fatalf("shape: %d sequences, %d events", db.NumSequences(), db.NumEvents())
	}
	if got := db.Support([]string{"request", "response"}); got != 2 {
		t.Errorf("sup(request response) = %d, want 2", got)
	}
	res, err := db.MineClosed(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The full shared flow open auth request response close is frequent
	// in both traces; it must appear among the closed patterns.
	found := false
	for _, p := range res.Patterns {
		if len(p.Events) == 5 && p.Events[0] == "open" && p.Events[4] == "close" {
			found = true
		}
	}
	if !found {
		t.Errorf("shared flow missing from closed patterns: %v", res.Patterns)
	}
}

func TestLoadFileWrongFormat(t *testing.T) {
	// chars file parsed as SPMF must fail loudly.
	if _, err := LoadFile("testdata/example11.chars", SPMF); err == nil {
		t.Error("chars file accepted as SPMF")
	}
}

package repro

import (
	"strings"
	"testing"
)

func example11(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	db.AddString("S1", "AABCDABB")
	db.AddString("S2", "ABCD")
	return db
}

func TestPublicSupport(t *testing.T) {
	db := example11(t)
	if got := db.Support([]string{"A", "B"}); got != 4 {
		t.Errorf("Support(AB) = %d, want 4", got)
	}
	if got := db.Support([]string{"C", "D"}); got != 2 {
		t.Errorf("Support(CD) = %d, want 2", got)
	}
	if got := db.Support([]string{"Z"}); got != 0 {
		t.Errorf("Support(unknown) = %d, want 0", got)
	}
	if got := db.Support(nil); got != 0 {
		t.Errorf("Support(empty) = %d, want 0", got)
	}
}

func TestPublicSupportSet(t *testing.T) {
	db := example11(t)
	set := db.SupportSet([]string{"A", "B"})
	if len(set) != 4 {
		t.Fatalf("|support set| = %d, want 4", len(set))
	}
	for _, ins := range set {
		if len(ins.Positions) != 2 {
			t.Errorf("instance %v has %d positions", ins, len(ins.Positions))
		}
		if ins.Positions[0] >= ins.Positions[1] {
			t.Errorf("landmark not increasing: %v", ins)
		}
		if ins.Sequence != "S1" && ins.Sequence != "S2" {
			t.Errorf("unknown sequence label %q", ins.Sequence)
		}
	}
	if got := db.SupportSet([]string{"missing"}); got != nil {
		t.Errorf("SupportSet(unknown) = %v", got)
	}
}

func TestPublicMine(t *testing.T) {
	db := example11(t)
	res, err := db.Mine(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range res.Patterns {
		got[strings.Join(p.Events, "")] = p.Support
	}
	if got["AB"] != 4 || got["CD"] != 2 || got["A"] != 4 {
		t.Errorf("mined supports: %v", got)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not set")
	}
}

func TestPublicMineClosed(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "ABCACBDDB")
	db.AddString("S2", "ACDBACADD")
	all, err := db.Mine(Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := db.MineClosed(Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(closed.Patterns) >= len(all.Patterns) {
		t.Errorf("closed %d not smaller than all %d", len(closed.Patterns), len(all.Patterns))
	}
	names := map[string]bool{}
	for _, p := range closed.Patterns {
		names[strings.Join(p.Events, "")] = true
	}
	if names["AB"] || names["AA"] {
		t.Errorf("non-closed pattern in closed result: %v", names)
	}
	if !names["ABD"] {
		t.Errorf("ABD missing from closed result: %v", names)
	}
}

func TestPublicCollectInstances(t *testing.T) {
	db := example11(t)
	res, err := db.MineClosed(Options{MinSupport: 2, CollectInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if len(p.Instances) != p.Support {
			t.Errorf("pattern %v: %d instances for support %d", p.Events, len(p.Instances), p.Support)
		}
	}
	res2, err := db.MineClosed(Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res2.Patterns {
		if p.Instances != nil {
			t.Error("instances attached without CollectInstances")
		}
	}
}

func TestPublicMaxPatterns(t *testing.T) {
	db := example11(t)
	res, err := db.Mine(Options{MinSupport: 1, MaxPatterns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 2 || !res.Truncated {
		t.Errorf("patterns=%d truncated=%v", len(res.Patterns), res.Truncated)
	}
}

func TestPublicOptionsValidation(t *testing.T) {
	db := example11(t)
	if _, err := db.Mine(Options{MinSupport: 0}); err == nil {
		t.Error("MinSupport=0 accepted")
	}
	if _, err := db.MineClosed(Options{MinSupport: -3}); err == nil {
		t.Error("negative MinSupport accepted")
	}
}

func TestPublicPerSequenceSupport(t *testing.T) {
	db := NewDatabase()
	db.AddString("heavy", "CABABABABABD")
	db.AddString("light", "ABCD")
	per := db.PerSequenceSupport([]string{"A", "B"})
	if len(per) != 2 || per[0] != 5 || per[1] != 1 {
		t.Errorf("per-sequence = %v, want [5 1]", per)
	}
	total := db.Support([]string{"A", "B"})
	if per[0]+per[1] != total {
		t.Errorf("per-sequence sum %d != support %d", per[0]+per[1], total)
	}
}

func TestPublicLoad(t *testing.T) {
	input := "S1: AABCDABB\nS2: ABCD\n"
	db, err := Load(strings.NewReader(input), Chars)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 || db.NumEvents() != 4 {
		t.Errorf("loaded %d sequences, %d events", db.NumSequences(), db.NumEvents())
	}
	if got := db.Support([]string{"A", "B"}); got != 4 {
		t.Errorf("Support(AB) = %d, want 4", got)
	}
	if _, err := Load(strings.NewReader("x"), Format(99)); err == nil {
		t.Error("unknown format accepted")
	}
	tokens := "login view buy\nlogin logout\n"
	db2, err := Load(strings.NewReader(tokens), Tokens)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Support([]string{"login"}); got != 2 {
		t.Errorf("Support(login) = %d", got)
	}
	spmf := "1 -1 2 -1 -2\n"
	db3, err := Load(strings.NewReader(spmf), SPMF)
	if err != nil {
		t.Fatal(err)
	}
	if got := db3.Support([]string{"1", "2"}); got != 1 {
		t.Errorf("SPMF Support(1 2) = %d", got)
	}
}

func TestPublicLoadFile(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path.db", Chars); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPublicStats(t *testing.T) {
	db := example11(t)
	st := db.Stats()
	if st.NumSequences != 2 || st.DistinctEvents != 4 || st.TotalLength != 12 {
		t.Errorf("stats: %+v", st)
	}
	if st.MinLength != 4 || st.MaxLength != 8 || st.AvgLength != 6 {
		t.Errorf("length stats: %+v", st)
	}
}

func TestPublicIncrementalAdd(t *testing.T) {
	db := NewDatabase()
	db.AddString("", "AB")
	if got := db.Support([]string{"A", "B"}); got != 1 {
		t.Fatalf("initial support = %d", got)
	}
	// Adding more data must invalidate the cached index.
	db.AddString("", "AB")
	if got := db.Support([]string{"A", "B"}); got != 2 {
		t.Errorf("support after add = %d, want 2", got)
	}
	db.Add("", []string{"A", "B"})
	if got := db.Support([]string{"A", "B"}); got != 3 {
		t.Errorf("support after Add = %d, want 3", got)
	}
}

package repro

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/repl"
	"repro/internal/store"
)

// Database roles, as reported by Persistence.Role and ReplicaStatus.Role.
const (
	RolePrimary  = store.RolePrimary
	RoleFollower = store.RoleFollower
)

// ReplicaOptions configures OpenReplica. The zero value is a sensible
// follower: safe local durability defaults and the standard reconnect
// schedule.
type ReplicaOptions struct {
	// Open tunes the replica's local store (fsync policy, checkpoint
	// threshold); same meaning as for Open.
	Open OpenOptions
	// Backoff and BackoffMax tune the tailer's jittered exponential
	// reconnect schedule; zero selects the defaults (200ms, 15s).
	Backoff    time.Duration
	BackoffMax time.Duration
	// Transport overrides the HTTP transport used for feed requests; nil
	// selects http.DefaultTransport.
	Transport http.RoundTripper
	// Logf, when set, receives replication progress lines (bootstraps,
	// resumes, re-bootstraps, promotion).
	Logf func(format string, args ...any)
}

// Replica is a read-only follower of a database served by a remote
// primary. It bootstraps from the primary's newest checkpoint segment,
// then tails the primary's write-ahead log and applies every batch to its
// own durable store, so Database() serves the same queries and mining
// operations as the primary — from local disk, at a bounded lag.
//
// A replica heals itself: connection loss is retried with jittered
// exponential backoff, and divergence (the primary's database was
// replaced, or the replica's position is no longer retained) is answered
// by discarding local state and bootstrapping again. Appends on the
// replica's Database fail with ErrNotPrimary until Promote.
type Replica struct {
	f  *repl.Follower
	db *Database
}

// OpenReplica opens (or resumes) a replica of database name on the
// primary at upstream (base URL, e.g. "http://primary:8372"), storing its
// local state in dir. An existing replica directory for the same upstream
// and database resumes from its local position — no network needed at
// open time; a fresh directory bootstraps from the primary's newest
// segment, which requires the primary to be reachable.
//
// The returned replica is already tailing. Close stops it.
func OpenReplica(upstream, name, dir string, opt ReplicaOptions) (*Replica, error) {
	r := &Replica{}
	cfg := repl.Config{
		Upstream:   upstream,
		DB:         name,
		Dir:        dir,
		Store:      opt.Open.internal(),
		Backoff:    opt.Backoff,
		BackoffMax: opt.BackoffMax,
		Logf:       opt.Logf,
		// A re-bootstrap rebuilt the local state on a fresh store; switch
		// the public handle over atomically. In-flight snapshots keep the
		// old store's immutable state.
		OnSwap: func(st *store.Store) { r.db.swapStore(st) },
	}
	if opt.Transport != nil {
		cfg.Client = &http.Client{Transport: opt.Transport}
	}
	f, err := repl.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("repro: replica %s: %w", dir, err)
	}
	st, err := f.Open()
	if err != nil {
		return nil, fmt.Errorf("repro: replica %s: %w", dir, errors.Join(ErrStorage, err))
	}
	r.f = f
	r.db = newDatabase(st)
	f.Run()
	return r, nil
}

// Database returns the replica's database handle. It serves every query
// and mining operation from the replica's local state; Append fails with
// ErrNotPrimary until Promote. The handle stays valid across
// re-bootstraps (it switches to the fresh state atomically) and after
// promotion.
func (r *Replica) Database() *Database { return r.db }

// ReplicaStatus is a point-in-time snapshot of a replica's replication
// state.
type ReplicaStatus struct {
	// Role is "follower", or "primary" after promotion.
	Role string
	// Upstream and Database identify what is being replicated.
	Upstream string
	Database string
	// Epoch is the primary lineage the local state was replicated from; it
	// changes when the primary's database is replaced wholesale.
	Epoch string
	// Connected reports whether the WAL tail stream is currently up.
	Connected bool
	// Generation is the last generation applied locally.
	Generation uint64
	// PrimaryGeneration is the primary's generation as of the last frame
	// received; LagRecords and LagBytes measure the distance to it, and
	// LastContact is when that frame arrived (time since it bounds how
	// stale the lag numbers themselves are).
	PrimaryGeneration uint64
	LagRecords        uint64
	LagBytes          uint64
	LastContact       time.Time
	// Bootstraps counts full segment bootstraps (1 for a fresh replica;
	// more mean divergence was detected and healed).
	Bootstraps int
	// LastError is the most recent tail failure ("" while healthy).
	LastError string
}

// Status reports the replica's replication state.
func (r *Replica) Status() ReplicaStatus {
	s := r.f.Status()
	return ReplicaStatus{
		Role:              s.Role,
		Upstream:          s.Upstream,
		Database:          s.Database,
		Epoch:             s.Epoch,
		Connected:         s.Connected,
		Generation:        s.Generation,
		PrimaryGeneration: s.PrimaryGeneration,
		LagRecords:        s.LagRecords,
		LagBytes:          s.LagBytes,
		LastContact:       s.LastContact,
		Bootstraps:        s.Bootstraps,
		LastError:         s.LastError,
	}
}

// Promote ends replication and makes the replica's database a primary:
// the tailer stops, the local WAL tail is sealed, and the database starts
// accepting Appends. The directory then opens as an ordinary durable
// database. Promotion is one-way; the old primary, if it comes back, must
// not keep taking writes (fence it off operationally).
func (r *Replica) Promote() error {
	if err := r.f.Promote(); err != nil {
		return fmt.Errorf("repro: promote: %w", errors.Join(ErrStorage, err))
	}
	return nil
}

// Close stops replication and closes the local store. Snapshots already
// taken stay usable. After Promote, Close just closes the database.
func (r *Replica) Close() error { return r.f.Close() }

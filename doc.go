// Package repro is a Go implementation of repetitive gapped subsequence
// mining, reproducing Ding, Lo, Han, Khoo: "Efficient Mining of Closed
// Repetitive Gapped Subsequences from a Sequence Database" (ICDE 2009).
//
// Given a database of event sequences, the miner finds every pattern
// (gapped subsequence) whose repetitive support — the maximum number of
// pairwise non-overlapping occurrences, counted across AND within
// sequences — reaches a user threshold, or only the closed such patterns
// (those with no super-pattern of equal support). The algorithms are the
// paper's GSgrow and CloGSgrow, built on instance growth over an inverted
// event index, with closure checking and landmark border pruning for the
// closed variant.
//
// Quick start:
//
//	db := repro.NewDatabase()
//	db.Add("S1", []string{"A", "A", "B", "C", "D", "A", "B", "B"})
//	db.Add("S2", []string{"A", "B", "C", "D"})
//	res, err := db.MineClosed(repro.Options{MinSupport: 2})
//	if err != nil { ... }
//	for _, p := range res.Patterns {
//		fmt.Println(p.Events, p.Support)
//	}
//
// Long-running or interactive callers can bound and observe mining runs:
// Options.Ctx cancels a run in flight (the DFS polls the context and
// returns the patterns found so far with Result.Truncated set),
// Options.OnPattern streams patterns as they are emitted, and
// Options.Workers fans the search out over a worker pool with output
// identical to the sequential run.
//
// # Occurrence semantics
//
// What counts as one occurrence of a pattern — and therefore which
// patterns a run returns — is a pluggable dimension of the same API,
// selected by Options.Semantics (and spelled identically in the HTTP
// service's "semantics" request field and the CLI's -semantics flag):
//
//   - SemanticsRepetitive (the zero value): the paper's repetitive
//     support, the maximum number of pairwise non-overlapping instances
//     across and within sequences. The only mode with a closure theory
//     (MineClosed) and a best-first top-k search (MineTopK*).
//   - SemanticsNonOverlapping: disjoint-window support — each counted
//     occurrence's whole window must end before the next begins. Greedy
//     earliest-end matching is provably optimal here (interval
//     scheduling), so support stays exact and anti-monotone.
//   - SemanticsCompressed: CRGSgrow's δ-compressed representatives. The
//     run mines the closed set internally and returns a greedy minimal
//     subset of representatives such that every closed pattern P has a
//     representative R with P ⊑ R and sup(R) ≥ (1−δ)·sup(P).
//     Options.CompressDelta sets δ (0 means the 0.1 default);
//     Options.MaxPatterns caps the representative list.
//   - SemanticsGapped: gap-constrained mining — Options.MinGap and
//     Options.MaxGap bound the gap between consecutive pattern events,
//     and per-sequence support is a max-flow computation. Sequential
//     only, no instance collection, no closed mode. The old
//     MineGapConstrained/GapOptions surface remains as a deprecated
//     wrapper over this mode.
//
// Invalid combinations (closed × nonoverlap, top-k × anything
// non-repetitive, gap bounds without SemanticsGapped, δ outside [0,1),
// …) fail fast with errors that satisfy errors.Is against the package's
// sentinel taxonomy: ErrUnknownSemantics, ErrInvalidOptions,
// ErrUnknownDatabase, ErrUnknownFormat, ErrStorage. ParseSemantics maps
// the canonical wire/CLI strings to the enum.
//
// # Writing a new semantics strategy
//
// Internally each mode is a core.Semantics strategy
// (internal/core/semantics.go) plugged into one shared DFS kernel. A
// strategy answers three questions: how a pattern's compressed instance
// set grows by one event (Grow/Singleton), what support that set
// denotes (Support — it must be anti-monotone under pattern extension,
// or pruning is unsound and results silently incomplete), and how the
// run finishes (SearchOptions to adjust the traversal, Finalize to
// post-process results, as the compressed mode does for set cover). A
// nil strategy, SemanticsRepetitive, and SemanticsCompressed all run
// the default instance-growth kernel unchanged — the hot path stays
// allocation-free and bit-compatible — while a strategy like
// nonoverlap only overrides the per-node support computation. New
// strategies get parallelism for free (the scheduler is
// strategy-agnostic), must stay import-clean of server/cli/store
// (enforced by internal/archtest), and should ship with an independent
// brute-force oracle in internal/verify plus fixture parity sweeps, as
// the shipped modes do.
//
// # Snapshots and live appends
//
// A Database is not static: it is a handle over a snapshot store
// (internal/store). Every mutation — Add, or a batched Append — seals the
// new state as an immutable, generation-numbered Snapshot, and every
// query or mining run executes against exactly one snapshot. That makes
// mining concurrently with appends safe by construction: there is no
// prepare step, no locking discipline, and no torn reads — a miner simply
// keeps the generation it started with.
//
//	snap := db.Snapshot()             // pin one generation
//	res, _ := snap.MineClosed(opt)    // consistent no matter what appends
//	db.Append([]repro.Record{         // upsert: "S1" grows, others are new
//		{Label: "S1", Events: []string{"A", "B"}},
//		{Label: "S9", Events: []string{"B", "C"}},
//	})
//
// Appends never re-derive old state: the inverted index is extended
// incrementally — per-sequence tables of untouched sequences are shared
// with the parent snapshot, only sequences the batch touches are
// re-tabulated, the event dictionary is cloned copy-on-write only when
// new event names appear, and statistics are maintained incrementally.
// The per-append cost is the batch's events plus O(N) slice-header
// bookkeeping (sequence contents are never re-read), which is orders of
// magnitude cheaper than the full index rebuild it replaces.
// Snapshot.Generation identifies database contents, which is what the
// HTTP service keys its result cache by.
//
// # Durable databases
//
// NewDatabase and Load build in-memory databases: nothing touches disk,
// and that remains the zero-configuration default. Open (recover or
// start a database in a directory) and Create (seed a directory from a
// data stream, replacing its previous contents) return databases with
// the same API plus durability: every Append is encoded into a
// CRC32C-framed write-ahead log before it is acknowledged, checkpoints
// compact the log into an immutable segment file (automatically past
// OpenOptions.CheckpointWALBytes, or explicitly via Compact), and Open
// recovers state as latest segment + WAL tail replay. The lifecycle is
//
//	db, err := repro.Open(dir, repro.OpenOptions{})  // recover (or init)
//	snap, err := db.Append(batch)                    // logged, then published
//	err = db.Sync()                                  // durability barrier (weak policies)
//	err = db.Close()                                 // flush + fsync + release
//
// OpenOptions.Sync selects when the log is fsynced: SyncAlways (the
// default) makes every acknowledged append survive even a machine
// crash; SyncInterval and SyncNever trade a bounded loss window for
// throughput — acknowledged-then-lost writes are impossible only under
// SyncAlways. Torn frames from a crash mid-write are detected by
// checksums and dropped cleanly on recovery, never replayed as partial
// batches. Snapshots recovered from disk rebuild their indexes lazily
// on first use, exactly like freshly loaded databases, and
// Database.Persistence reports the recovery state (checkpointed
// generation, WAL size, sync policy) for monitoring.
//
// Under SyncAlways, concurrent Appends are group-committed: records
// arriving within one commit window are packed into a single
// write-ahead-log write and flushed with a single fsync, so acknowledged
// throughput scales with offered load instead of being capped at one
// disk flush per record. The contract per record is unchanged — a nil
// error from Append still means that exact record is on stable storage —
// and a lone appender never waits out the window, so single-client
// latency stays within one commit window of the unbatched path.
// OpenOptions.CommitMaxBatch and CommitMaxWait tune the window (defaults
// 64 records / 1ms; a negative CommitMaxBatch disables batching and
// restores the serialized one-fsync-per-record path), and
// Database.Persistence reports CommitBatches and CommitRecords — the
// HTTP persistence block and /readyz additionally derive fsyncsSaved —
// so the achieved coalescing is observable in production.
//
// # Degraded mode and self-healing
//
// A durable database survives its disk failing. When an append hits an
// I/O error — ENOSPC, EIO, a failed fsync — the batch is rejected (it
// was never acknowledged, so the durability contract is intact) and the
// database flips to read-only degraded mode: queries and mining keep
// serving the last published snapshot, while further Appends fail fast
// with an error wrapping ErrDegraded and carrying the root errno. A
// background prober then retries recovery with jittered exponential
// backoff (OpenOptions.ProbeBackoff doubling up to ProbeBackoffMax;
// defaults 100ms and 30s): it first proves the disk writes again with a
// scratch-file fsync, then reopens the write-ahead log, truncating any
// complete-but-unacknowledged frame a failed fsync may have left — a
// rejected batch never resurrects — and flips the database back to
// writable. No restart, no operator call. A failed checkpoint is the
// milder cousin: appends stay durable through the WAL (no degradation),
// the log just stops compacting until the prober lands the checkpoint;
// Persistence.CheckpointError, .WALError, .Degraded and .DegradedError
// expose all of it for monitoring, and the HTTP service maps the same
// state to /readyz and per-database persistence blocks.
//
// # Replication and failover
//
// A durable database can be replicated to read-only followers.
// OpenReplica(upstream, name, dir, opts) bootstraps a local copy from the
// primary's checkpoint segment, then tails the primary's write-ahead log
// over HTTP, applying acknowledged records in order through the same
// codecs recovery uses — so a follower's on-disk state is always a valid
// database directory, crash-safe at every step. The returned
// Replica.Database serves the full read and mining API from the
// follower's own snapshots; writes fail with an error wrapping
// ErrNotPrimary (the HTTP service maps it to 409 with the primary's
// address). The tailer reconnects with jittered exponential backoff,
// detects divergence — a primary that was re-uploaded, restored, or
// replaced mints a new lineage epoch — and re-bootstraps itself; a plain
// restart resumes from the local WAL position without re-downloading
// anything. Replica.Status reports role, lag in records/bytes/time,
// connection state, and bootstrap count; Replica.Promote (or `gsgrow
// promote` on a stopped follower's directory, or the service's POST
// /v1/replication/{db}/promote) ends replication and flips the same
// handle writable for failover. Run a whole follower node with
// `reprod -replicate-from http://primary:8372` — it mirrors every
// database the primary hosts and gates its /readyz on configurable
// staleness bounds. See the README's "Replication & failover" section
// for the operational picture.
//
// # Performance
//
// The mining core is allocation-free in steady state: support sets,
// candidate lists and closure-check chains are recycled through
// per-miner arenas, and refuted closure-check chains are memoized along
// the DFS path. The paper's next(S, e, lowest) primitive is answered in
// O(1) from per-sequence successor tables (FastNext) built lazily under
// a memory budget; sequences whose table would not fit fall back to the
// O(log L) binary search individually. Options.DisableFastNext selects
// binary search for a single run (identical output, lower memory) — see
// the README's performance-tuning section for the measured trade-offs.
//
// # Parallel mining
//
// Options.Workers > 1 runs the mining DFS on a work-stealing scheduler:
// each worker owns a deque of stealable subtree tasks, publishes the
// shallowest untaken branches of its recursion when peers go idle, and
// steals from busy workers when its own deque runs dry — so deep,
// skewed search spaces parallelize, not just wide ones. Every emission
// carries a (seed, branch-path) order key and the merge reassembles the
// sequential emission sequence from keyed blocks, which makes the
// result — patterns, supports, order, and the first-MaxPatterns prefix
// under a budget — identical to the sequential run for every worker
// count and steal timing. TopKOptions.Workers parallelizes the
// best-first top-k search the same way: sharded frontiers coordinated
// through the current k-th best support, byte-identical results.
//
// Top-k memory is bounded by the peak live frontier, not by the number
// of nodes ever explored: frontier entries are parent-pointer nodes in
// a recycled block arena, a child's instance set is only materialized
// when the child is popped, and children whose support upper bound
// cannot beat the current k-th best are discarded before allocation.
// Result.TopKFrontierPeak and TopKArenaBytes report the high-water
// numbers per run.
//
// Workers helps when the mine is substantial (milliseconds and up) and
// the machine has idle cores; it only adds scheduling overhead on tiny
// databases or at very high support thresholds (a handful of shallow
// patterns). Requested counts above the host's usable CPUs are clamped
// rather than spawned — Result.WorkersRequested and WorkersEffective
// report both sides of the clamp. The sequential path (Workers <= 1)
// runs the same single-threaded miner; its only scheduler cost is
// per-node candidate-frame bookkeeping, which benchmarks faster than
// the pre-scheduler baseline.
//
// The same capabilities are exposed over HTTP by the mining service
// (internal/server, started with `gsgrow serve` or cmd/reprod): named
// databases are uploaded once, grown in place with NDJSON append streams
// (POST /v1/databases/{name}/append, or `gsgrow append` from the command
// line), and mined concurrently by many clients, with NDJSON streaming,
// client-disconnect cancellation, and an LRU result cache keyed by
// snapshot generation and canonical options — appending to one database
// invalidates exactly its own cache entries.
//
// The subpackages under internal implement the substrate (sequence
// database, inverted index, generators, baselines, brute-force oracles,
// experiment harness); this package is the stable public surface.
package repro

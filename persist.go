package repro

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/seq"
	"repro/internal/store"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// SyncPolicy selects when durable databases fsync the write-ahead log.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before acknowledging it: an
	// acknowledged write can never be lost, even to a machine crash. The
	// cost is one fsync per append batch. This is the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs in the background at OpenOptions.SyncInterval.
	// A machine crash can lose up to one interval of acknowledged
	// appends; a clean process exit (or crash that spares the OS) loses
	// nothing.
	SyncInterval
	// SyncNever leaves write-back entirely to the OS. Fastest, and still
	// safe against process crashes, but a machine crash loses whatever
	// the kernel had not yet written.
	SyncNever
)

// String returns the flag/wire name of the policy ("always", "interval",
// "never").
func (p SyncPolicy) String() string { return p.internal().String() }

// ParseSyncPolicy maps a flag value ("always", "interval", "never") to a
// SyncPolicy. Unknown names return an error wrapping ErrInvalidOptions.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	wp, err := wal.ParsePolicy(s)
	if err != nil {
		return 0, fmt.Errorf("repro: %w: %v", ErrInvalidOptions, err)
	}
	switch wp {
	case wal.SyncAlways:
		return SyncAlways, nil
	case wal.SyncInterval:
		return SyncInterval, nil
	default:
		return SyncNever, nil
	}
}

func (p SyncPolicy) internal() wal.SyncPolicy {
	switch p {
	case SyncInterval:
		return wal.SyncInterval
	case SyncNever:
		return wal.SyncNever
	default:
		return wal.SyncAlways
	}
}

// OpenOptions configures a durable database. The zero value is the safe
// default: fsync on every append, automatic checkpoints at the default
// WAL size.
type OpenOptions struct {
	// Sync is the WAL fsync policy. The zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval;
	// 0 selects a 100ms default.
	SyncInterval time.Duration
	// CheckpointWALBytes triggers an automatic checkpoint (WAL compacted
	// into a fresh segment) when the WAL exceeds this size. 0 selects a
	// 4 MiB default; negative disables automatic checkpoints, leaving
	// compaction to explicit Compact calls.
	CheckpointWALBytes int64
	// ProbeBackoff and ProbeBackoffMax tune the degraded-mode recovery
	// prober: the first retry delay and the exponential-backoff cap.
	// Zero selects the defaults (100ms and 30s).
	ProbeBackoff    time.Duration
	ProbeBackoffMax time.Duration
	// CommitMaxBatch tunes WAL group commit under Sync=SyncAlways:
	// concurrent Appends arriving within the commit window are coalesced
	// into one WAL write and ONE fsync of up to this many records, so
	// durable throughput scales with offered load instead of disk-flush
	// latency. 0 selects the default (64; group commit is on by default
	// under SyncAlways); negative disables coalescing, restoring the
	// one-fsync-per-append path. Ignored under weaker policies.
	CommitMaxBatch int
	// CommitMaxWait bounds how long a commit batch is held open for
	// stragglers once more appenders are en route (a lone appender never
	// waits). 0 selects the default (1ms); negative disables waiting.
	CommitMaxWait time.Duration
	// FS overrides the filesystem the database performs its I/O through.
	// It is a module-internal fault-injection hook (the type lives in an
	// internal package): external callers leave it nil, which selects
	// the real OS filesystem.
	FS vfs.FS
}

func (o OpenOptions) internal() store.Options {
	return store.Options{
		SyncPolicy:         o.Sync.internal(),
		SyncInterval:       o.SyncInterval,
		CheckpointWALBytes: o.CheckpointWALBytes,
		ProbeBackoff:       o.ProbeBackoff,
		ProbeBackoffMax:    o.ProbeBackoffMax,
		CommitMaxBatch:     o.CommitMaxBatch,
		CommitMaxWait:      o.CommitMaxWait,
		FS:                 o.FS,
	}
}

// Open opens (creating if needed) a durable database stored in dir,
// recovering any previous state: the newest checkpoint segment is loaded
// and the write-ahead tail is replayed on top, so every append
// acknowledged under SyncAlways — and every append at all, if the
// machine did not crash — is present. Torn tails from a crash mid-write
// are detected by checksums and dropped cleanly.
//
// The returned database behaves exactly like an in-memory one (appends
// publish immutable snapshots, mining runs against one generation), plus
// every Append is logged before it is acknowledged. Call Close when
// done; call Sync after batches of Adds under weaker sync policies.
func Open(dir string, opt OpenOptions) (*Database, error) {
	st, err := store.Open(dir, opt.internal())
	if err != nil {
		return nil, fmt.Errorf("repro: open %s: %w", dir, errors.Join(ErrStorage, err))
	}
	return newDatabase(st), nil
}

// Create initializes a durable database in dir from r in the given
// format, replacing whatever database the directory held before (the
// upload-replace shape of the service). The parsed contents are
// checkpointed to a segment before Create returns, so the database is
// durable immediately.
func Create(dir string, r io.Reader, format Format, opt OpenOptions) (*Database, error) {
	f, err := format.internal()
	if err != nil {
		return nil, err
	}
	db, err := seq.Parse(r, f)
	if err != nil {
		return nil, fmt.Errorf("repro: create %s (format %s): %w", dir, format, err)
	}
	st, err := store.Create(dir, db, opt.internal())
	if err != nil {
		return nil, fmt.Errorf("repro: create %s: %w", dir, errors.Join(ErrStorage, err))
	}
	return newDatabase(st), nil
}

// Persist writes the database's current snapshot into dir as a durable
// database — replacing whatever database the directory held — and
// returns the durable handle. The snapshot is checkpointed to a segment
// before Persist returns. The receiver stays a valid, independent
// in-memory database; services use Persist to validate an upload fully
// in memory before committing it over the previous generation's files.
func (d *Database) Persist(dir string, opt OpenOptions) (*Database, error) {
	st, err := store.Create(dir, d.store().Current().DB(), opt.internal())
	if err != nil {
		return nil, fmt.Errorf("repro: persist %s: %w", dir, errors.Join(ErrStorage, err))
	}
	return newDatabase(st), nil
}

// Sync flushes unsynced WAL appends to stable storage: the explicit
// durability barrier under SyncInterval/SyncNever (under SyncAlways
// every append is already durable and Sync is a no-op). Nil for
// in-memory databases.
func (d *Database) Sync() error { return d.store().Sync() }

// Close flushes and fsyncs the write-ahead log and releases the
// database's files. Snapshots already taken stay usable (they are
// immutable in memory); subsequent Appends fail. A no-op for in-memory
// databases; safe to call twice.
func (d *Database) Close() error { return d.store().Close() }

// Compact checkpoints the current generation into a fresh segment and
// truncates the write-ahead log, bounding recovery time. Appends trigger
// this automatically when the WAL exceeds
// OpenOptions.CheckpointWALBytes; Compact is the explicit form (e.g.
// before copying the directory for a backup). A no-op for in-memory
// databases.
func (d *Database) Compact() error { return d.store().Checkpoint() }

// Persistence describes how (and whether) a database is stored.
type Persistence struct {
	// Durable is false for in-memory databases; every other field except
	// Role is then zero.
	Durable bool
	// Role is "primary" for ordinary databases and "follower" for a
	// replica tailing an upstream primary (see OpenReplica). Followers
	// reject Append with ErrNotPrimary until promoted.
	Role string
	// Dir is the storage directory.
	Dir string
	// Sync is the configured fsync policy.
	Sync SyncPolicy
	// Generation is the current snapshot generation.
	Generation uint64
	// SegmentGeneration is the newest checkpointed generation; recovery
	// replays the WAL from there. 0 = no checkpoint yet.
	SegmentGeneration uint64
	// WALBytes and WALRecords size the write-ahead tail that recovery
	// would replay.
	WALBytes   int64
	WALRecords int
	// CheckpointError reports the last automatic-checkpoint failure (""
	// when healthy). Appends remain durable through the WAL while this is
	// set; the WAL just is not being compacted.
	CheckpointError string
	// WALError reports the write-ahead log's sticky error ("" while
	// healthy), with the root errno preserved in the text. Set, it means
	// appends cannot become durable until the log heals.
	WALError string
	// Degraded reports read-only degraded mode: appends are rejected
	// with ErrDegraded while mining continues on the last snapshot, and
	// a background prober retries recovery until the disk heals.
	// DegradedError is the root cause.
	Degraded      bool
	DegradedError string
	// CommitBatches and CommitRecords count WAL group-commit activity
	// over the database's lifetime: coalesced batches written, and the
	// records they carried. CommitRecords/CommitBatches is the achieved
	// coalescing factor; CommitRecords - CommitBatches is the number of
	// fsyncs saved versus one-fsync-per-append. Fsyncs counts every
	// fsync issued on the database's write-ahead logs.
	CommitBatches int64
	CommitRecords int64
	Fsyncs        int64
}

// Persistence returns the database's durability state.
func (d *Database) Persistence() Persistence {
	info := d.store().Durability()
	p := Persistence{
		Durable:           info.Durable,
		Role:              info.Role,
		Dir:               info.Dir,
		Generation:        info.Generation,
		SegmentGeneration: info.SegmentGeneration,
		WALBytes:          info.WALBytes,
		WALRecords:        info.WALRecords,
		CheckpointError:   info.CheckpointError,
		WALError:          info.WALError,
		Degraded:          info.Degraded,
		DegradedError:     info.DegradedError,
		CommitBatches:     info.CommitBatches,
		CommitRecords:     info.CommitRecords,
		Fsyncs:            info.Fsyncs,
	}
	if info.Durable {
		switch info.SyncPolicy {
		case wal.SyncInterval:
			p.Sync = SyncInterval
		case wal.SyncNever:
			p.Sync = SyncNever
		default:
			p.Sync = SyncAlways
		}
	}
	return p
}

// Command reprod is the long-running mining service: it hosts named
// sequence databases uploaded over HTTP and serves concurrent
// GSgrow/CloGSgrow/top-k mining requests, with client-cancellation support
// and an LRU result cache. See internal/server for the API.
//
// Usage:
//
//	reprod -addr :8372 -cache 64
//
// Then, from a client:
//
//	curl -X POST --data-binary @db.txt 'localhost:8372/v1/databases/mydb?format=tokens'
//	curl -X POST -d '{"closed":true,"minSupport":10}' localhost:8372/v1/databases/mydb/mine
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	var cfg cli.ServeConfig
	flag.StringVar(&cfg.Addr, "addr", ":8372", "listen address")
	flag.IntVar(&cfg.CacheSize, "cache", 0, "result-cache entries (0 = default, negative disables)")
	flag.StringVar(&cfg.DebugAddr, "debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", 0, "graceful-shutdown drain budget (0 = default 5s)")
	flag.StringVar(&cfg.DataDir, "data-dir", "", "host databases durably in this directory (recovered on boot; empty = in-memory)")
	flag.StringVar(&cfg.FsyncPolicy, "fsync", "always", "WAL fsync policy for -data-dir: always, interval, never")
	flag.DurationVar(&cfg.FsyncInterval, "fsync-interval", 0, "background fsync cadence under -fsync=interval (0 = default 100ms)")
	flag.Int64Var(&cfg.CheckpointBytes, "checkpoint-bytes", 0, "WAL size triggering automatic compaction (0 = default 4MiB, negative disables)")
	flag.IntVar(&cfg.CommitBatch, "commit-batch", 0, "max records coalesced into one WAL write+fsync under -fsync=always (0 = default 64, negative disables group commit)")
	flag.DurationVar(&cfg.CommitWait, "commit-wait", 0, "max time a commit batch is held open for concurrent appenders (0 = default 1ms, negative disables waiting)")
	flag.DurationVar(&cfg.MineTimeout, "mine-timeout", 0, "per-request mining deadline; runs exceeding it answer 503 (0 = unbounded)")
	flag.IntVar(&cfg.MaxConcurrentMines, "max-concurrent-mines", 0, "cap on mining runs in flight; excess requests answer 429 (0 = unlimited)")
	flag.StringVar(&cfg.ReplicateFrom, "replicate-from", "", "run as a read-only follower of the primary at this base URL (requires -data-dir; empty = primary)")
	flag.Int64Var(&cfg.MaxLagBytes, "max-lag-bytes", 0, "follower readiness gate: answer 503 on /readyz when this many WAL bytes are unshipped (0 = disabled)")
	flag.DurationVar(&cfg.MaxLag, "max-lag", 0, "follower readiness gate: answer 503 on /readyz after this long without contact from the primary (0 = disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal: graceful drain (in-flight mining contexts cancel, the
	// listener closes, responses flush). A second signal falls through to
	// the default handler and kills the process immediately.
	go func() { <-ctx.Done(); stop() }()
	if err := cli.Serve(ctx, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

// Command experiments regenerates the paper's evaluation artifacts
// (Table I semantics, Figures 2-6 sweeps, and the Section IV-B case study).
//
//	experiments -exp all -scale bench     # scaled-down, minutes total
//	experiments -exp fig2 -scale full     # paper-scale (can run for hours)
//
// Scaled runs preserve the figures' qualitative shape (who wins, how the
// gap moves) at laptop-friendly sizes; -scale full uses the paper's
// dataset parameters. See EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/harness"
	"repro/internal/seq"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, fig2, fig3, fig4, fig5, fig6, case, grid, all")
		scale   = flag.String("scale", "bench", "bench (scaled-down) or full (paper-scale)")
		seed    = flag.Int64("seed", 1, "generator seed")
		gridIn  = flag.String("grid", "", "grid spec JSON for -exp grid (empty = built-in default grid)")
		gridCSV = flag.String("csv", "", "per-run CSV output path for -exp grid (empty = no CSV)")
	)
	flag.Parse()
	full := *scale == "full"
	if *scale != "full" && *scale != "bench" {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	run := func(name string, fn func(bool, int64) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s (%s scale) ===\n", name, *scale)
		if err := fn(full, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table1", runTable1)
	run("fig2", runFig2)
	run("fig3", runFig3)
	run("fig4", runFig4)
	run("fig5", runFig5)
	run("fig6", runFig6)
	run("case", runCase)
	// The top-k scaling grid is hardware-dependent (it measures parallel
	// speedup on the local cores), so it runs only when asked for
	// explicitly, not under -exp all.
	if *exp == "grid" {
		fmt.Printf("=== grid ===\n")
		if err := runGrid(*gridIn, *gridCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: grid: %v\n", err)
			os.Exit(1)
		}
	}
}

// runGrid executes the top-k scaling grid (scripts/bench_grid.sh drives
// this): spec JSON in, per-run CSV out, median/speedup summary table on
// stdout.
func runGrid(specPath, csvPath string) error {
	spec := harness.GridSpec{}
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		spec, err = harness.ParseGridSpec(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	rows, err := harness.RunGrid(spec)
	if err != nil {
		return err
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := harness.WriteGridCSV(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d runs to %s\n", len(rows), csvPath)
	}
	fmt.Print(harness.GridSummaryTable(rows))
	return nil
}

func runTable1(bool, int64) error {
	res, err := harness.Table1()
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func printSweep(db *seq.DB, label string, cfg harness.SweepConfig) error {
	fmt.Printf("dataset %s: %s\n", label, seq.ComputeStats(db).String())
	sweep, err := harness.RunMinSupSweep(db, cfg)
	if err != nil {
		return err
	}
	fmt.Print(sweep.Table())
	for _, v := range harness.CheckShape(sweep, true) {
		fmt.Println("SHAPE VIOLATION:", v)
	}
	return nil
}

func runFig2(full bool, seed int64) error {
	if full {
		db, err := datagen.Quest(datagen.QuestParams{D: 5, C: 20, N: 10, S: 20, Seed: seed})
		if err != nil {
			return err
		}
		// The paper sweeps min_sup 10..3 with GSgrow cut off below 7.
		return printSweep(db, "D5C20N10S20", harness.SweepConfig{
			MinSups: []int{10, 9, 8, 7, 6, 5, 4, 3}, AllCutoff: 7, AllBudget: 5_000_000,
		})
	}
	db, err := datagen.Quest(datagen.QuestParams{D: 1, C: 20, N: 1, S: 20, Seed: seed})
	if err != nil {
		return err
	}
	return printSweep(db, "D1C20N1S20 (scaled)", harness.SweepConfig{
		MinSups: []int{20, 15, 10, 8, 6, 5}, AllBudget: 1_000_000,
	})
}

func runFig3(full bool, seed int64) error {
	if full {
		db, err := datagen.Gazelle(datagen.GazelleParams{Seed: seed})
		if err != nil {
			return err
		}
		// The paper sweeps 66..8 with GSgrow cut off below 63.
		return printSweep(db, "Gazelle", harness.SweepConfig{
			MinSups: []int{66, 65, 64, 63, 30, 15, 8}, AllCutoff: 63, AllBudget: 5_000_000,
		})
	}
	db, err := datagen.Gazelle(datagen.GazelleParams{NumSequences: 5000, Seed: seed})
	if err != nil {
		return err
	}
	return printSweep(db, "Gazelle (5000 sessions)", harness.SweepConfig{
		MinSups: []int{30, 20, 15, 10, 8}, AllBudget: 1_000_000,
	})
}

func runFig4(full bool, seed int64) error {
	db, err := datagen.TCAS(datagen.TCASParams{Seed: seed})
	if err != nil {
		return err
	}
	if full {
		// The paper runs CloGSgrow down to min_sup = 1 and cuts GSgrow off
		// below 886; our trace generator is already at dataset scale, and
		// the lowest supports can run for a long time.
		return printSweep(db, "TCAS", harness.SweepConfig{
			MinSups: []int{3000, 2000, 1500, 1000, 500, 200}, AllCutoff: 1000, AllBudget: 5_000_000,
		})
	}
	return printSweep(db, "TCAS", harness.SweepConfig{
		MinSups: []int{3000, 2000, 1500, 1000}, AllCutoff: 1000, AllBudget: 1_000_000,
	})
}

func runFig5(full bool, seed int64) error {
	ds := []float64{1, 2, 3}
	c, n, s, minSup, pool := 25, 2, 12, 20, 800
	if full {
		ds = []float64{5, 10, 15, 20, 25}
		c, n, s, minSup, pool = 50, 10, 25, 20, 2000
	}
	// The pattern pool is pinned across the sweep (like Quest's fixed
	// NS = 5000): with more sequences drawing from the same pool, pattern
	// frequencies — and hence the counts at fixed min_sup — grow with D,
	// which is the effect Figure 5 plots.
	sweep, err := harness.RunDBSweep("Figure 5: varying number of sequences", "D (thousands)",
		ds, minSup, harness.SweepConfig{AllBudget: 2_000_000},
		func(x float64) (*seq.DB, error) {
			return datagen.Quest(datagen.QuestParams{D: int(x), C: c, N: n, S: s, NumPatterns: pool, Seed: seed})
		})
	if err != nil {
		return err
	}
	fmt.Print(sweep.Table())
	for _, v := range harness.CheckShape(sweep, false) {
		fmt.Println("SHAPE VIOLATION:", v)
	}
	return nil
}

func runFig6(full bool, seed int64) error {
	lens := []float64{10, 20, 30, 40, 50}
	d, n, minSup := 2, 2, 20
	if full {
		lens = []float64{20, 40, 60, 80, 100}
		d, n = 10, 10
	}
	sweep, err := harness.RunDBSweep("Figure 6: varying average sequence length", "C=S (avg len)",
		lens, minSup, harness.SweepConfig{AllBudget: 2_000_000},
		func(x float64) (*seq.DB, error) {
			return datagen.Quest(datagen.QuestParams{D: d, C: int(x), N: n, S: int(x) / 2, Seed: seed})
		})
	if err != nil {
		return err
	}
	fmt.Print(sweep.Table())
	for _, v := range harness.CheckShape(sweep, false) {
		fmt.Println("SHAPE VIOLATION:", v)
	}
	return nil
}

func runCase(full bool, seed int64) error {
	cfg := harness.CaseStudyConfig{
		JBoss:  datagen.JBossParams{NumTraces: 12, NoiseMean: 2, Seed: seed},
		MinSup: 12,
	}
	if full {
		cfg = harness.CaseStudyConfig{
			JBoss:  datagen.JBossParams{Seed: seed},
			MinSup: 18,
		}
	}
	rep, err := harness.RunCaseStudy(cfg)
	if err != nil {
		return err
	}
	out := rep.Render()
	// Trim the long event listing at bench scale.
	if !full {
		lines := strings.Split(out, "\n")
		fmt.Println(strings.Join(lines[:4], "\n"))
		fmt.Printf("  (longest pattern spans %d events; run -scale full to print it)\n", len(rep.Longest))
		fmt.Println(lines[len(lines)-2])
		return nil
	}
	fmt.Print(out)
	return nil
}

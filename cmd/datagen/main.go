// Command datagen writes the synthetic datasets of the paper's evaluation
// to stdout (or a file) in any of the supported formats.
//
//	datagen -dataset quest -D 5 -C 20 -N 10 -S 20 -seed 1 > d5c20n10s20.txt
//	datagen -dataset gazelle -o gazelle.txt
//	datagen -dataset tcas -o tcas.txt
//	datagen -dataset jboss -o jboss.txt
//
// See DESIGN.md §5 for how each generator substitutes the paper's
// unavailable original datasets.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
)

func main() {
	var (
		out = flag.String("o", "-", "output file ('-' for stdout)")
		cfg cli.GenerateConfig
	)
	flag.StringVar(&cfg.Dataset, "dataset", "quest", "quest, gazelle, tcas, or jboss")
	flag.StringVar(&cfg.Format, "format", "tokens", "output format: tokens, chars, spmf")
	flag.Int64Var(&cfg.Seed, "seed", 1, "generator seed")
	flag.BoolVar(&cfg.Stats, "stats", false, "print statistics to stderr after generating")
	flag.IntVar(&cfg.D, "D", 5, "quest: sequences (thousands)")
	flag.IntVar(&cfg.C, "C", 20, "quest: average events per sequence")
	flag.IntVar(&cfg.N, "N", 10, "quest: distinct events (thousands)")
	flag.IntVar(&cfg.S, "S", 20, "quest: average planted-pattern length")
	flag.IntVar(&cfg.Sequences, "sequences", 0, "gazelle/tcas/jboss: number of sequences (0 = paper default)")
	flag.Parse()

	if err := run(*out, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, cfg cli.GenerateConfig) error {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return cli.Generate(cfg, w, os.Stderr)
}

// Command gsgrow mines (closed) repetitive gapped subsequences from a
// sequence database file, implementing the GSgrow and CloGSgrow algorithms
// of Ding, Lo, Han, Khoo (ICDE 2009).
//
// Usage:
//
//	gsgrow -input db.txt -format tokens -minsup 10 -closed
//
// Formats: tokens (default; one sequence per line, whitespace-separated
// events, optional "label:" prefix), chars (one char = one event), spmf.
// With -stats the tool only prints database statistics. -support mines
// nothing and instead reports the repetitive support of one pattern given
// as comma-separated events. -density applies the paper's case-study
// post-processing (density filter, maximality, rank by length).
// -semantics selects the occurrence semantics: repetitive (default),
// nonoverlap (disjoint occurrences), compressed (CRGSgrow representative
// patterns, tuned with -compress-delta), or gapped (gap-constrained,
// tuned with -mingap/-maxgap).
// The serve subcommand starts the long-running mining service instead
// (same daemon as cmd/reprod):
//
//	gsgrow serve -addr :8372
//
// With -replicate-from it serves as a read-only follower of another
// instance, and `gsgrow promote <dir>` turns a stopped follower's
// database directory into a writable primary (failover):
//
//	gsgrow serve -addr :8373 -data-dir /var/lib/replica -replicate-from http://primary:8372
//	gsgrow promote /var/lib/replica/mydb
//
// The append subcommand streams new sequences into a database hosted by a
// running service (labeled sequences upsert — re-sending a label appends
// events to that sequence):
//
//	gsgrow append -addr localhost:8372 -db mydb -input delta.txt -format tokens
//
// The loadgen subcommand drives a running service's mine endpoint at a
// configurable concurrency and reports throughput and latency percentiles
// (see the README's "Measuring on your hardware"):
//
//	gsgrow loadgen -addr localhost:8372 -db bench -upload db.txt -topk 100 -c 16 -n 500
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "gsgrow serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "append" {
		if err := runAppend(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "gsgrow append:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := runLoadgen(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "gsgrow loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && (os.Args[1] == "inspect" || os.Args[1] == "compact" || os.Args[1] == "promote") {
		if err := runStorage(os.Args[1], os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "gsgrow %s: %v\n", os.Args[1], err)
			os.Exit(1)
		}
		return
	}
	var (
		input = flag.String("input", "", "input database file ('-' for stdin)")
		cfg   cli.MineConfig
	)
	flag.StringVar(&cfg.Format, "format", "tokens", "input format: tokens, chars, spmf")
	flag.IntVar(&cfg.MinSup, "minsup", 2, "repetitive support threshold")
	flag.BoolVar(&cfg.Closed, "closed", false, "mine closed patterns (CloGSgrow) instead of all (GSgrow)")
	flag.IntVar(&cfg.MaxLen, "maxlen", 0, "maximum pattern length (0 = unbounded)")
	flag.IntVar(&cfg.MaxPatterns, "maxpatterns", 0, "stop after this many patterns (0 = unbounded)")
	flag.BoolVar(&cfg.Instances, "instances", false, "print each pattern's support set")
	flag.BoolVar(&cfg.Stats, "stats", false, "print database statistics and exit")
	flag.StringVar(&cfg.Support, "support", "", "report the support of one comma-separated pattern and exit")
	flag.Float64Var(&cfg.Density, "density", 0, "post-process with the case-study pipeline at this density threshold")
	flag.IntVar(&cfg.Top, "top", 0, "print only the first N patterns (0 = all)")
	flag.IntVar(&cfg.TopK, "topk", 0, "mine the K highest-support patterns instead of using -minsup")
	flag.IntVar(&cfg.Workers, "workers", 1, "parallel mining fan-out")
	flag.BoolVar(&cfg.NoFastNext, "no-fastnext", false, "use the binary-search next() index instead of O(1) successor tables")
	flag.StringVar(&cfg.Semantics, "semantics", "repetitive", "occurrence semantics: repetitive, nonoverlap, compressed, gapped")
	flag.IntVar(&cfg.MinGap, "mingap", 0, "minimum gap between consecutive events (-semantics gapped)")
	flag.IntVar(&cfg.MaxGap, "maxgap", 0, "maximum gap between consecutive events (-semantics gapped)")
	flag.Float64Var(&cfg.CompressDelta, "compress-delta", 0, "cover tolerance for -semantics compressed (0 = default 0.1)")
	flag.Parse()

	if err := run(*input, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gsgrow:", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var cfg cli.ServeConfig
	fs.StringVar(&cfg.Addr, "addr", ":8372", "listen address")
	fs.IntVar(&cfg.CacheSize, "cache", 0, "result-cache entries (0 = default, negative disables)")
	fs.StringVar(&cfg.DebugAddr, "debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 0, "graceful-shutdown drain budget (0 = default 5s)")
	fs.StringVar(&cfg.DataDir, "data-dir", "", "host databases durably in this directory (recovered on boot; empty = in-memory)")
	fs.StringVar(&cfg.FsyncPolicy, "fsync", "always", "WAL fsync policy for -data-dir: always, interval, never")
	fs.DurationVar(&cfg.FsyncInterval, "fsync-interval", 0, "background fsync cadence under -fsync=interval (0 = default 100ms)")
	fs.Int64Var(&cfg.CheckpointBytes, "checkpoint-bytes", 0, "WAL size triggering automatic compaction (0 = default 4MiB, negative disables)")
	fs.IntVar(&cfg.CommitBatch, "commit-batch", 0, "max records coalesced into one WAL write+fsync under -fsync=always (0 = default 64, negative disables group commit)")
	fs.DurationVar(&cfg.CommitWait, "commit-wait", 0, "max time a commit batch is held open for concurrent appenders (0 = default 1ms, negative disables waiting)")
	fs.DurationVar(&cfg.MineTimeout, "mine-timeout", 0, "per-request mining deadline; runs exceeding it answer 503 (0 = unbounded)")
	fs.IntVar(&cfg.MaxConcurrentMines, "max-concurrent-mines", 0, "cap on mining runs in flight; excess requests answer 429 (0 = unlimited)")
	fs.StringVar(&cfg.ReplicateFrom, "replicate-from", "", "run as a read-only follower of the primary at this base URL (requires -data-dir; empty = primary)")
	fs.Int64Var(&cfg.MaxLagBytes, "max-lag-bytes", 0, "follower readiness gate: answer 503 on /readyz when this many WAL bytes are unshipped (0 = disabled)")
	fs.DurationVar(&cfg.MaxLag, "max-lag", 0, "follower readiness gate: answer 503 on /readyz after this long without contact from the primary (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal starts the graceful drain, restore default
	// signal handling so a second SIGINT/SIGTERM kills the process
	// immediately instead of waiting out the drain.
	go func() { <-ctx.Done(); stop() }()
	return cli.Serve(ctx, cfg, os.Stderr)
}

// runStorage handles the durable-storage subcommands: `gsgrow inspect
// <dir>` summarizes a database directory's segments, WAL, replication
// role, and the state recovery would reconstruct (with -json, as one
// JSON document per directory), exiting nonzero on any corruption or
// torn tail so it slots directly into monitoring; `gsgrow compact
// <dir>` checkpoints the WAL into a fresh segment; `gsgrow promote
// <dir>` converts a stopped follower's replica directory into a
// writable primary (failover when the primary is gone). All take
// database directories (e.g. <data-dir>/<name> of a reprod -data-dir
// deployment).
func runStorage(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var asJSON bool
	if cmd == "inspect" {
		fs.BoolVar(&asJSON, "json", false, "emit the report as JSON")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: gsgrow %s <dir> [<dir>...]", cmd)
	}
	// Process every directory before failing: one damaged database must
	// not hide the report (or the damage) of the next.
	var firstErr error
	for _, dir := range fs.Args() {
		var err error
		switch cmd {
		case "inspect":
			err = cli.Inspect(dir, asJSON, os.Stdout)
		case "promote":
			err = cli.Promote(dir, os.Stdout)
		default:
			err = cli.Compact(dir, os.Stdout)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func runAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	var cfg cli.AppendConfig
	var input string
	fs.StringVar(&cfg.Addr, "addr", "localhost:8372", "address of the running service")
	fs.StringVar(&cfg.DB, "db", "", "target database name")
	fs.StringVar(&cfg.Format, "format", "tokens", "input format: tokens, chars, spmf, or ndjson (raw append records)")
	fs.StringVar(&input, "input", "", "input file ('-' for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if input == "" {
		return fmt.Errorf("missing -input")
	}
	var in io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return cli.Append(cfg, in, os.Stdout)
}

// runLoadgen drives a running service's mine endpoint at configurable
// concurrency and reports throughput + latency percentiles; with -upload
// it first stands up the target database from a local file:
//
//	gsgrow loadgen -addr localhost:8372 -db bench -upload db.txt -topk 100 -c 16 -n 500
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var cfg cli.LoadgenConfig
	var upload string
	fs.StringVar(&cfg.Addr, "addr", "localhost:8372", "address of the running service")
	fs.StringVar(&cfg.DB, "db", "", "target database name")
	fs.IntVar(&cfg.Requests, "n", 100, "total mine requests to send")
	fs.IntVar(&cfg.Concurrency, "c", 8, "concurrent clients")
	fs.DurationVar(&cfg.Duration, "duration", 0, "stop issuing after this long (0 = run all -n requests)")
	fs.IntVar(&cfg.TopK, "topk", 0, "top-k mine request (exactly one of -topk/-minsup)")
	fs.IntVar(&cfg.MinSup, "minsup", 0, "threshold mine request (exactly one of -topk/-minsup)")
	fs.BoolVar(&cfg.Closed, "closed", false, "request closed patterns")
	fs.IntVar(&cfg.Workers, "workers", 0, "per-request mining workers (0 = server default)")
	fs.StringVar(&cfg.Format, "format", "tokens", "format of the -upload file")
	fs.StringVar(&upload, "upload", "", "upload this file as -db before driving load (empty = db must exist)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader
	if upload != "" {
		f, err := os.Open(upload)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return cli.Loadgen(context.Background(), cfg, in, os.Stdout)
}

func run(input string, cfg cli.MineConfig) error {
	if input == "" {
		return fmt.Errorf("missing -input")
	}
	var in io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return cli.Mine(cfg, in, os.Stdout)
}

package repro

import (
	"context"
	"testing"
)

// TestOptionsCtxCancel covers the public cancellation surface: a context
// cancelled mid-run stops the DFS and marks the result Truncated.
func TestOptionsCtxCancel(t *testing.T) {
	db := NewDatabase()
	// Dense enough that the run visits thousands of nodes.
	db.AddString("S1", "ABCDABCDABCDABCD")
	db.AddString("S2", "BADCBADCBADCBADC")
	db.AddString("S3", "CABDCABDCABDCABD")

	full, err := db.Mine(Options{MinSupport: 2, DiscardPatterns: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || full.NumPatterns < 1000 {
		t.Fatalf("full run: truncated=%t num=%d", full.Truncated, full.NumPatterns)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	res, err := db.Mine(Options{
		MinSupport: 2,
		Ctx:        ctx,
		OnPattern: func(p Pattern) bool {
			seen++
			if seen == 10 {
				cancel()
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("cancelled run not marked Truncated")
	}
	if res.NumPatterns >= full.NumPatterns {
		t.Errorf("cancelled run emitted all %d patterns", full.NumPatterns)
	}
}

// TestOptionsOnPatternStop covers the public streaming surface: OnPattern
// sees every pattern, and returning false stops the run.
func TestOptionsOnPatternStop(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "AABCDABB")
	db.AddString("S2", "ABCD")

	var streamed []Pattern
	res, err := db.MineClosed(Options{
		MinSupport: 2,
		OnPattern: func(p Pattern) bool {
			streamed = append(streamed, p)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Patterns) {
		t.Fatalf("streamed %d patterns, result has %d", len(streamed), len(res.Patterns))
	}
	for i, p := range streamed {
		if p.Support != res.Patterns[i].Support {
			t.Errorf("pattern %d: streamed support %d, result %d", i, p.Support, res.Patterns[i].Support)
		}
	}

	count := 0
	res2, err := db.Mine(Options{
		MinSupport:      2,
		DiscardPatterns: true,
		OnPattern: func(Pattern) bool {
			count++
			return count < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Truncated {
		t.Error("stopped stream not marked Truncated")
	}
	if len(res2.Patterns) != 0 {
		t.Errorf("DiscardPatterns kept %d patterns", len(res2.Patterns))
	}
	if res2.NumPatterns != 3 {
		t.Errorf("NumPatterns = %d, want 3", res2.NumPatterns)
	}
}

// TestMineTopKContextCancelled covers the public top-k cancellation path.
func TestMineTopKContextCancelled(t *testing.T) {
	db := NewDatabase()
	db.AddString("S1", "AABCDABB")
	db.AddString("S2", "ABCD")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := db.MineTopKContext(ctx, 5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("pre-cancelled top-k not marked Truncated")
	}

	// A nil context is tolerated, matching Options.Ctx semantics.
	resNil, err := db.MineTopKContext(nil, 2, true, 0) //nolint:staticcheck // nil ctx is the case under test
	if err != nil {
		t.Fatal(err)
	}
	if resNil.NumPatterns != 2 || resNil.Truncated {
		t.Errorf("nil-ctx top-k: patterns=%d truncated=%t", resNil.NumPatterns, resNil.Truncated)
	}
}
